"""Dependency-aware cross-job scheduling for the batch engine.

``repro serve --serve-workers N`` runs *independent* jobs concurrently
on the :mod:`repro.exec` process pool without giving up one byte of the
determinism contract.  The unit of scheduling is the **affinity
chain**:

* Two jobs are *dependent* (same chain) when they share an affinity
  key — the (netlist content, die) pair — because those are exactly the
  jobs that feed each other's warm starts: same layout entry, same
  matcher memos, same per-(netlist, die) route pool.  Within a chain,
  jobs run **sequentially, in submission order**, so every job's cache
  reads see exactly the snapshot the fully sequential engine would
  have produced for that (netlist, die).
* Jobs with different keys share no route pool or layout entry, so
  their relative order cannot change any warm start a job observes —
  they interleave freely across chains.

Each chain executes in a pool worker with its own chain-local
:class:`~repro.serve.caches.SessionCaches` (optionally backed by the
shared ``--cache-dir`` disk tier, whose atomic writes make concurrent
chains safe).  Because every cache is a pure speedup, chain-local
caches produce byte-identical result lines to the shared sequential
cache — asserted by ``tests/serve/test_scheduler.py`` and the CI
serve-parallel smoke step.  Results return keyed by submission index
and the engine re-emits them in submission order, so the output stream
of ``--serve-workers N`` is byte-identical to ``--serve-workers 1``.

Inside a pool worker the per-job ``workers`` fan-out degrades to the
serial loop (pool workers cannot fork their own pools); cross-job
parallelism and in-job parallelism are therefore alternatives — use
``--serve-workers`` for many small jobs, ``--workers`` for few large
ones.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.tracer import Span, Tracer
from .jobs import Job, JobResult

__all__ = ["ChainOutcome", "affinity_key", "plan_chains", "run_chain"]

#: (netlist content key or raw source, die rows) — the scheduling key.
AffinityKey = Tuple[str, int]


def affinity_key(job: Job) -> AffinityKey:
    """The (netlist, die) scheduling key of a job.

    Uses the same content key as the session caches (two paths to the
    same BLIF bytes belong to one chain).  An unreadable source falls
    back to the raw source string: the job will fail identically
    wherever it runs, and grouping such jobs together keeps their
    error lines in submission order trivially.
    """
    from .caches import source_key
    try:
        skey = source_key(job.source)
    except OSError:
        skey = f"raw:{job.source}"
    return (skey, job.rows)


def plan_chains(jobs: Sequence[Job]) -> List[List[int]]:
    """Partition submission indices into affinity chains.

    Chains are ordered by first appearance and preserve submission
    order internally, so chain 0 always contains submission index 0 —
    which is what lets the engine stream results in submission order
    while chains complete in task (= chain-index) order.
    """
    chains: Dict[AffinityKey, List[int]] = {}
    order: List[AffinityKey] = []
    for index, job in enumerate(jobs):
        key = affinity_key(job)
        if key not in chains:
            chains[key] = []
            order.append(key)
        chains[key].append(index)
    return [chains[key] for key in order]


class ChainOutcome:
    """What one executed chain sends back to the scheduling engine."""

    __slots__ = ("chain_index", "results", "counters", "per_job", "work",
                 "span", "metrics", "slow_jobs")

    def __init__(self, chain_index: int,
                 results: List[Tuple[int, JobResult]],
                 counters: Dict[str, int], per_job: List[dict],
                 work: Dict[str, int], span: Optional[Span],
                 metrics: Optional[Dict[str, Any]] = None,
                 slow_jobs: int = 0):  # noqa: D107
        self.chain_index = chain_index
        #: (submission index, result) pairs, in chain (= submission) order.
        self.results = results
        self.counters = counters
        self.per_job = per_job
        self.work = work
        self.span = span
        #: ``MetricsRegistry.snapshot()`` of the chain's instruments.
        self.metrics = metrics if metrics is not None else {}
        self.slow_jobs = slow_jobs


def run_chain(payload: Any, task: Tuple[int, Tuple[Tuple[int, Job], ...]]
              ) -> ChainOutcome:
    """Execute one affinity chain in a worker process (the pool task fn).

    ``payload`` is the engine-constant tuple ``(config, workers,
    bounds, cache_dir, artifacts_dir, want_trace, slow_job_s)``;
    ``task`` carries the chain index and its (submission index, job)
    pairs.  The chain gets a private single-threaded engine over
    chain-local caches; its trace (when the parent traces) comes back
    as a detached span for :meth:`repro.obs.tracer.Tracer.adopt`, its
    instruments as a metrics snapshot the engine merges in chain order.
    """
    from .engine import ServeEngine

    chain_index, indexed_jobs = task
    (config, workers, bounds, cache_dir, artifacts_dir, want_trace,
     slow_job_s) = payload
    tracer = Tracer("chain", index=chain_index, jobs=len(indexed_jobs)) \
        if want_trace else None
    engine = ServeEngine(config, workers=workers, tracer=tracer,
                         artifacts_dir=artifacts_dir, bounds=bounds,
                         cache_dir=cache_dir, slow_job_s=slow_job_s)
    results = engine.run([job for _, job in indexed_jobs])
    span = tracer.close() if tracer is not None else None
    return ChainOutcome(
        chain_index,
        [(index, result) for (index, _), result
         in zip(indexed_jobs, results)],
        engine.caches.counters(),
        [dict(entry) for entry in engine.summary()["per_job"]],
        dict(engine.work_counters()),
        span,
        metrics=engine.metrics.snapshot(),
        slow_jobs=engine.slow_jobs)
