"""Content-keyed persistent on-disk cache: warm starts across restarts.

The in-memory :class:`~repro.serve.caches.SessionCaches` dies with its
process, so every *cold* engine re-places and re-routes everything it
has ever seen.  :class:`PersistentCache` is the disk tier below it: a
directory of pickled entries, one file per (kind, key), that lets a
fresh process warm-start layouts and route pools computed by an earlier
one (``repro serve --cache-dir DIR``).

Reuse must be *provably* sound — adopting a stale entry could silently
change results — so every entry carries three guards that are all
checked on load:

* **Format version** (:data:`CACHE_FORMAT`) — bumped whenever the
  payload layout changes; old-format files are skipped, never parsed
  into the wrong shape.
* **Fingerprint** — a digest of everything that could change what a
  cached payload *means*: the repro version, the numpy major/minor
  version (array pickles), and the cell library's content (names,
  areas, row height).  A cache written by a different build or against
  a different library is skipped wholesale.
* **Key echo** — the full repr of the logical key is stored inside the
  entry and compared on load, so a filename-digest collision (or a
  hand-renamed file) can never alias two keys.

A guard miss, a truncated file, or any unpickling error counts as
``skipped`` and behaves exactly like a cache miss: the caller
recomputes and overwrites.  Corruption is *never* fatal.  Writes go
through a temp file + :func:`os.replace`, so concurrent writers (e.g.
parallel serve chains sharing one ``--cache-dir``) leave either the old
or the new complete entry, never a torn one.

The payloads are pickles: treat a cache directory like any other local
build product and do not point ``--cache-dir`` at untrusted files.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Any, Dict, Optional

from .. import __version__
from ..library.cell import CellLibrary

__all__ = ["CACHE_FORMAT", "PersistentCache", "cache_fingerprint"]

#: Bump when the on-disk payload layout changes; older files are skipped.
CACHE_FORMAT = 1


def cache_fingerprint(library: CellLibrary) -> str:
    """The compatibility digest stored in (and required of) every entry.

    Covers the repro release, the numpy major/minor version and the
    library content — the inputs under which a cached layout or route
    snapshot stays valid.  Anything else (hostname, path, time) is
    deliberately excluded: caches are meant to be reusable.
    """
    import numpy

    np_tag = ".".join(numpy.__version__.split(".")[:2])
    cells = ";".join(f"{c.name}:{c.area:g}:{c.num_inputs}"
                     for c in library.cells())
    text = (f"format={CACHE_FORMAT}|repro={__version__}|numpy={np_tag}"
            f"|library={library.name}:{library.row_height:g}|{cells}")
    return "sha256:" + hashlib.sha256(text.encode("utf-8")).hexdigest()


class PersistentCache:
    """One cache directory: ``load``/``store`` plus skip-not-fail guards."""

    def __init__(self, directory: str, fingerprint: str):  # noqa: D107
        self.directory = directory
        self.fingerprint = fingerprint
        os.makedirs(directory, exist_ok=True)
        self._counts: Dict[str, int] = {
            "persist_hits": 0, "persist_misses": 0,
            "persist_skipped": 0, "persist_writes": 0,
        }

    def _path(self, kind: str, key: Any) -> str:
        digest = hashlib.sha256(repr((kind, key)).encode("utf-8")).hexdigest()
        return os.path.join(self.directory, f"{kind}-{digest[:40]}.pkl")

    # -- reading ---------------------------------------------------------

    def load(self, kind: str, key: Any) -> Optional[Any]:
        """The payload stored for (kind, key), or ``None``.

        ``None`` means either *miss* (no file) or *skipped* (guard
        mismatch or corruption) — the counters distinguish them, the
        caller need not: both mean "recompute and store".
        """
        path = self._path(kind, key)
        if not os.path.exists(path):
            self._counts["persist_misses"] += 1
            return None
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            if (not isinstance(entry, dict)
                    or entry.get("format") != CACHE_FORMAT
                    or entry.get("fingerprint") != self.fingerprint
                    or entry.get("kind") != kind
                    or entry.get("key") != repr(key)):
                self._counts["persist_skipped"] += 1
                return None
            payload = entry["payload"]
        except Exception:
            # Truncated/corrupted/unreadable: a stale cache must never
            # take the service down — it is only ever a missed speedup.
            self._counts["persist_skipped"] += 1
            return None
        self._counts["persist_hits"] += 1
        return payload

    # -- writing ---------------------------------------------------------

    def store(self, kind: str, key: Any, payload: Any) -> bool:
        """Atomically (over)write the entry for (kind, key).

        Returns whether the write landed; an unpicklable payload or a
        full disk is reported as ``False`` rather than raised — the
        in-memory tier still has the object, so the job stream
        continues unharmed.
        """
        entry = {"format": CACHE_FORMAT, "fingerprint": self.fingerprint,
                 "kind": kind, "key": repr(key), "payload": payload}
        path = self._path(kind, key)
        try:
            fd, tmp = tempfile.mkstemp(dir=self.directory,
                                       prefix=".tmp-", suffix=".pkl")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(entry, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            return False
        self._counts["persist_writes"] += 1
        return True

    # -- reporting -------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Plain hit/miss/skip/write snapshot."""
        return dict(self._counts)
