"""Hierarchical run-scoped tracing: spans, counters, JSONL emission.

A :class:`Span` is one timed region of the flow — a run, a sweep, a
K point, or a phase (map / place / route) — with monotonic wall-times,
free-form attributes (the K value, the attempt index) and a
:class:`~repro.obs.registry.StatsRegistry` of typed counters.  Spans
nest, so one run produces a tree::

    run
    └── sweep
        ├── k_point (k=0)
        │   ├── map
        │   └── evaluate
        │       └── attempt (attempt=0)
        │           ├── place
        │           └── route
        └── k_point (k=0.001)
            └── ...

A :class:`Tracer` manages the active span stack of one tree.  Flow
stages that may run inside process-pool workers build their own
*detached* tracer and ship the finished span back with their result;
the caller then :meth:`~Tracer.adopt`\\ s it into the enclosing tree in
task order.  Because both the serial and the parallel execution paths
construct spans in the same code, the resulting trees are **identical
modulo wall-times** for ``workers=1`` and ``workers=N`` — the
:meth:`Span.skeleton` view (names, attributes, deterministic counters,
children) is the tested invariant.

Timestamps are ``time.perf_counter()`` values: durations are always
meaningful; absolute starts are only comparable within one process
(adopted worker spans keep their own clock base).

:meth:`Tracer.write_jsonl` emits the tree as JSON-lines — one ``meta``
line, then one ``span`` line per node in depth-first order with a
``path`` like ``run/sweep[0]/k_point[2]/map[0]``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple, Union

from ..errors import ReproError
from .registry import StatsRegistry

__all__ = ["Span", "Tracer", "TraceError"]


class TraceError(ReproError):
    """Tracer misuse (closing an already-closed tracer, etc.)."""


@dataclass
class Span:
    """One timed, attributed, counted region of a run."""

    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    t_start: float = 0.0
    t_end: Optional[float] = None
    counters: StatsRegistry = field(default_factory=StatsRegistry)
    children: List["Span"] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        """Whether the span has ended."""
        return self.t_end is not None

    @property
    def duration(self) -> float:
        """Wall-clock seconds from start to end (0.0 while open)."""
        return (self.t_end - self.t_start) if self.t_end is not None else 0.0

    def skeleton(self) -> Tuple:
        """The deterministic shape of the subtree.

        Names, sorted attributes, the deterministic counter subset and
        the children's skeletons — everything except wall-times and
        plan-dependent counters.  Two runs over the same inputs produce
        equal skeletons regardless of worker count or cache state.
        """
        return (
            self.name,
            tuple(sorted((k, v) for k, v in self.attrs.items())),
            tuple(sorted(self.counters.deterministic().items())),
            tuple(child.skeleton() for child in self.children),
        )

    def iter_spans(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def events(self, path: str = "", depth: int = 0
               ) -> Iterator[Dict[str, Any]]:
        """Depth-first ``span`` event dicts for JSONL emission."""
        here = f"{path}/{self.name}" if path else self.name
        event: Dict[str, Any] = {
            "event": "span",
            "path": here,
            "name": self.name,
            "depth": depth,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "dur": self.duration if self.closed else None,
        }
        if self.attrs:
            event["attrs"] = dict(self.attrs)
        if len(self.counters):
            event["counters"] = self.counters.as_dict()
            event["counter_kinds"] = self.counters.kinds()
        yield event
        for i, child in enumerate(self.children):
            yield from child.events(path=f"{here}[{i}]", depth=depth + 1)


class _SpanContext:
    """Re-entrant-free context manager opening one child span."""

    def __init__(self, tracer: "Tracer", span: Span):  # noqa: D107
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        self._span.t_start = time.perf_counter()
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._span.t_end = time.perf_counter()
        popped = self._tracer._stack.pop()
        assert popped is self._span


class Tracer:
    """Builds one span tree; the stack tracks the open span."""

    def __init__(self, name: str = "run", **attrs: Any):  # noqa: D107
        #: Wall-clock anchor: the Unix time at which the root span's
        #: ``perf_counter`` clock read :attr:`Span.t_start`.  Adopted
        #: worker spans keep their own clock base, so this is what lets
        #: multi-process serve traces be lined up on one timeline
        #: (``unix time of x ~= t_unix_start + (x - root.t_start)``).
        self.t_unix_start = time.time()
        self.root = Span(name=name, attrs=dict(attrs),
                         t_start=time.perf_counter())
        self._stack: List[Span] = [self.root]
        self._closed = False

    @property
    def current(self) -> Span:
        """The innermost open span."""
        return self._stack[-1]

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a child span of the current span (context manager)."""
        if self._closed:
            raise TraceError("tracer is already closed")
        child = Span(name=name, attrs=dict(attrs))
        self.current.children.append(child)
        return _SpanContext(self, child)

    def adopt(self, span: Optional[Span]) -> None:
        """Attach a detached span (e.g. from a pool worker) as a child
        of the current span.  ``None`` is ignored."""
        if self._closed:
            raise TraceError("tracer is already closed")
        if span is not None:
            self.current.children.append(span)

    def close(self) -> Span:
        """End the root span and return it (idempotent)."""
        if not self._closed:
            self.root.t_end = time.perf_counter()
            self._closed = True
        return self.root

    # -- emission --------------------------------------------------------

    def events(self) -> Iterator[Dict[str, Any]]:
        """The ``meta`` line plus every span event, depth-first."""
        yield {"event": "meta", "version": 1, "root": self.root.name,
               "clock": "perf_counter",
               "t_unix_start": self.t_unix_start}
        yield from self.root.events()

    def write_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write the trace as JSON-lines; returns the line count.

        ``target`` is a path or an open text file.  The tracer is
        closed first if still open.
        """
        self.close()
        lines = [json.dumps(event, sort_keys=True, default=str)
                 for event in self.events()]
        text = "\n".join(lines) + "\n"
        if isinstance(target, str):
            with open(target, "w") as handle:
                handle.write(text)
        else:
            target.write(text)
        return len(lines)
