"""Namespaced, collision-safe, typed statistics registry.

Every stats blob the flow produces — mapper phase times, router work
counters, evaluation wall-times, executor facts — used to be an ad-hoc
``Dict[str, float]``.  Those dicts collided on merge (``t_place`` from
two layers silently overwriting each other), lost integer-ness through
``float(...)`` casts, and gave no way to tell a wall-time from an
algorithmic count.  :class:`StatsRegistry` replaces them:

* **Namespaced keys** — every key is ``<namespace>.<name>`` (e.g.
  ``route.t_negotiate``, ``map.match_cache_hits``); un-namespaced keys
  are rejected at write time.
* **Collision-safe** — a key is written once; writing it again, or
  absorbing a registry that shares a key, raises
  :class:`StatsCollisionError` instead of silently overwriting.
* **Typed** — each entry carries a :data:`kind` that fixes both its
  Python type and its cross-run merge rule:

  ========  ======  =======  ==================================
  kind      type    merge    meaning
  ========  ======  =======  ==================================
  ``time``  float   sum      wall-clock seconds (never
                             deterministic)
  ``count`` int     sum      algorithmic result count —
                             bit-identical for identical inputs
                             regardless of workers / caches
  ``gauge`` float   sum      algorithmic result value (areas,
                             estimated wirelengths) —
                             deterministic like ``count``
  ``metric`` float  sum      measured property of the produced
                             solution — valid either way but may
                             vary with the execution plan (e.g.
                             routed wirelength under cache
                             warm-starts)
  ``work``  int     sum      work performed — varies with the
                             execution plan (cache warm-starts,
                             worker chunking) even when results
                             are identical
  ``env``   int     max      execution-environment fact
                             (worker counts, flags)
  ========  ======  =======  ==================================

* **Deterministic merging** — :meth:`merge` combines registries by the
  per-kind rules above in insertion order, so aggregating the same
  per-task registries in task order yields bit-identical totals no
  matter how many processes produced them.  The
  :meth:`deterministic` view (``count`` + ``gauge`` entries) is the
  subset guaranteed equal between ``workers=1`` and ``workers=N``.

Lookup accepts either the canonical dotted key or its bare final
component when unambiguous (``stats["cell_area"]`` finds
``map.cell_area``), which keeps call sites terse without giving up
collision safety at write time.
"""

from __future__ import annotations

import operator
import re
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Union

from ..errors import ReproError

__all__ = [
    "COUNT",
    "ENV",
    "GAUGE",
    "KINDS",
    "METRIC",
    "StatEntry",
    "StatsCollisionError",
    "StatsRegistry",
    "TIME",
    "WORK",
]

#: Entry kinds (see module docstring for semantics).
TIME = "time"
COUNT = "count"
GAUGE = "gauge"
METRIC = "metric"
WORK = "work"
ENV = "env"
KINDS = (TIME, COUNT, GAUGE, METRIC, WORK, ENV)

#: Kinds holding integers end-to-end.
_INT_KINDS = (COUNT, WORK, ENV)
#: Kinds whose values are guaranteed identical across execution plans.
_DETERMINISTIC_KINDS = (COUNT, GAUGE)

_KEY_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

Number = Union[int, float]


class StatsCollisionError(ReproError):
    """A stats key was written twice (the silent-overwrite bug class)."""


@dataclass(frozen=True)
class StatEntry:
    """One recorded statistic: its value and its kind."""

    value: Number
    kind: str


def _as_int(key: str, value: object) -> int:
    """Require an integral value (bools rejected); keep it an int."""
    if isinstance(value, bool):
        raise TypeError(f"stat {key!r}: booleans are not counters")
    try:
        return operator.index(value)  # ints and numpy integers
    except TypeError:
        raise TypeError(
            f"stat {key!r}: integer kinds require an integral value, "
            f"got {type(value).__name__}") from None


class StatsRegistry(Mapping):
    """Insertion-ordered mapping of namespaced keys to typed stats."""

    def __init__(self) -> None:  # noqa: D107
        self._entries: Dict[str, StatEntry] = {}

    # -- writing ---------------------------------------------------------

    def _put(self, key: str, value: Number, kind: str) -> None:
        if not _KEY_RE.match(key):
            raise ValueError(
                f"stats key {key!r} is not namespaced "
                "(expected '<namespace>.<name>', lowercase)")
        if key in self._entries:
            raise StatsCollisionError(
                f"stats key {key!r} written twice "
                f"(existing {self._entries[key]})")
        self._entries[key] = StatEntry(value=value, kind=kind)

    def time(self, key: str, seconds: float) -> None:
        """Record a wall-clock duration in seconds."""
        self._put(key, float(seconds), TIME)

    def count(self, key: str, value: int) -> None:
        """Record a deterministic algorithmic count (stays an int)."""
        self._put(key, _as_int(key, value), COUNT)

    def gauge(self, key: str, value: float) -> None:
        """Record a deterministic measured value (float)."""
        self._put(key, float(value), GAUGE)

    def metric(self, key: str, value: float) -> None:
        """Record a solution metric (float) that may legitimately vary
        with the execution plan (e.g. warm-started routes)."""
        self._put(key, float(value), METRIC)

    def work(self, key: str, value: int) -> None:
        """Record an execution-plan-dependent work count (int)."""
        self._put(key, _as_int(key, value), WORK)

    def env(self, key: str, value: int) -> None:
        """Record an execution-environment fact (int, merged by max)."""
        self._put(key, _as_int(key, value), ENV)

    # -- combining -------------------------------------------------------

    def absorb(self, other: "StatsRegistry") -> None:
        """Adopt another registry's entries; shared keys are an error.

        This is the composition operation (routing stats into an
        evaluation's stats): the key spaces must be disjoint, which is
        exactly what namespacing guarantees — a collision here is a
        bug, not data.
        """
        for key in other._entries:
            if key in self._entries:
                raise StatsCollisionError(
                    f"absorb would overwrite {key!r} "
                    f"({self._entries[key]} <- {other._entries[key]})")
        self._entries.update(other._entries)

    def merge(self, other: "StatsRegistry") -> None:
        """Accumulate another registry by the per-kind merge rules.

        This is the aggregation operation (the same counters from many
        tasks or workers): values of matching keys are summed
        (``env``: maxed); kinds must agree.  Merging task registries in
        task order is deterministic — the serial and the parallel paths
        produce bit-identical aggregates.
        """
        for key, entry in other._entries.items():
            mine = self._entries.get(key)
            if mine is None:
                self._entries[key] = entry
                continue
            if mine.kind != entry.kind:
                raise StatsCollisionError(
                    f"merge kind mismatch for {key!r}: "
                    f"{mine.kind} vs {entry.kind}")
            if entry.kind == ENV:
                value: Number = max(mine.value, entry.value)
            else:
                value = mine.value + entry.value
            self._entries[key] = StatEntry(value=value, kind=entry.kind)

    @classmethod
    def merged(cls, registries: "Iterator[StatsRegistry]") -> "StatsRegistry":
        """Merge a sequence of registries (in the given order)."""
        out = cls()
        for registry in registries:
            out.merge(registry)
        return out

    # -- views -----------------------------------------------------------

    def deterministic(self) -> Dict[str, Number]:
        """The ``count``/``gauge`` subset — bit-identical across
        ``workers=1`` and ``workers=N`` for the same inputs."""
        return {key: e.value for key, e in self._entries.items()
                if e.kind in _DETERMINISTIC_KINDS}

    def as_dict(self) -> Dict[str, Number]:
        """Plain ``{key: value}`` snapshot (canonical keys)."""
        return {key: e.value for key, e in self._entries.items()}

    def kinds(self) -> Dict[str, str]:
        """Plain ``{key: kind}`` snapshot."""
        return {key: e.kind for key, e in self._entries.items()}

    def kind(self, key: str) -> str:
        """The kind of one entry (accepts bare suffixes like lookup)."""
        return self._entries[self._resolve(key)].kind

    # -- mapping protocol (with bare-suffix resolution) -----------------

    def _resolve(self, key: str) -> str:
        if key in self._entries:
            return key
        if "." not in key:
            matches = [k for k in self._entries
                       if k.rsplit(".", 1)[1] == key]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise KeyError(
                    f"stats key {key!r} is ambiguous: {sorted(matches)}")
        raise KeyError(key)

    def __getitem__(self, key: str) -> Number:
        return self._entries[self._resolve(key)].value

    def get(self, key: str, default: Optional[Number] = None
            ) -> Optional[Number]:
        """Value of ``key`` (canonical or unambiguous bare suffix)."""
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: object) -> bool:
        try:
            self._resolve(str(key))
            return True
        except KeyError:
            return False

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={e.value!r}:{e.kind}"
                          for k, e in self._entries.items())
        return f"StatsRegistry({inner})"
