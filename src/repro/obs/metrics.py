"""Streaming metrics: fixed-bucket histograms and rolling gauges.

:class:`~repro.obs.registry.StatsRegistry` records *totals* — one
number per key, written once.  A long-lived ``repro serve`` session
needs *distributions*: how long do jobs take, how long do they wait,
where does the time go per phase, how does the cache footprint move.
This module adds the two streaming kinds of the registry family:

* :class:`Histogram` (kind ``hist``) — a **deterministic fixed-bucket
  histogram**: bucket upper bounds are fixed at construction
  (``le``-inclusive, Prometheus semantics, with an implicit ``+Inf``
  overflow bucket) and observations land by binary search.  Merging is
  bucket-wise integer addition plus an ordered float sum, so merging
  the same per-chain histograms **in chain order** is bit-identical to
  observing the union sequentially — the ``workers=1`` vs ``workers=N``
  discipline the counter registry already obeys.
* :class:`RollingGauge` (kind ``rolling``) — a bounded window over the
  most recent samples of a moving quantity (cache bytes over time),
  with all-time count/min/max.  Chain windows concatenate in merge
  order and the window keeps the newest samples.

:class:`MetricsRegistry` holds both under the same namespaced-key,
collision-safe rules as :class:`StatsRegistry`: a key names one
instrument forever; re-declaring it with different buckets (or as a
different kind) raises :class:`~repro.obs.registry.StatsCollisionError`.
Unlike the counter registry, *observing* an existing instrument is the
normal repeated operation.

The module also owns the export surface:

* :func:`render_prometheus` — the registry (counters + histograms +
  rolling gauges) in the Prometheus text exposition format (v0.0.4);
* :func:`render_metrics_json` — the same payload as one JSON document;
* :func:`parse_prometheus` — a minimal text-format parser, enough to
  round-trip everything :func:`render_prometheus` emits (used by the
  tests to pin the format).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .registry import (
    COUNT,
    StatsCollisionError,
    StatsRegistry,
    TIME,
    WORK,
    _KEY_RE,
)

__all__ = [
    "BYTE_BUCKETS",
    "HIST",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "ROLLING",
    "RollingGauge",
    "parse_prometheus",
    "render_metrics_json",
    "render_prometheus",
]

#: The streaming kinds (the counter kinds live in :mod:`.registry`).
HIST = "hist"
ROLLING = "rolling"

#: Default bucket bounds for wall-time observations, in seconds —
#: log-ish spacing from 1 ms to 5 min (jobs slower than that land in
#: the +Inf overflow bucket).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)

#: Default bucket bounds for byte-sized observations — powers of four
#: from 1 KiB to 1 GiB.
BYTE_BUCKETS: Tuple[float, ...] = tuple(
    float(1024 * 4 ** i) for i in range(11))

#: Samples a rolling gauge retains by default.
DEFAULT_WINDOW = 64


class Histogram:
    """A fixed-bucket distribution with deterministic merge.

    ``bounds`` are the finite ``le``-inclusive upper bounds in strictly
    increasing order; an implicit ``+Inf`` bucket catches the rest.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Iterable[float] = LATENCY_BUCKETS):  # noqa: D107
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(self.bounds, self.bounds[1:])):
            raise ValueError(
                f"histogram bounds must strictly increase: {self.bounds}")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        """Accumulate another histogram (bounds must match exactly).

        Bucket counts add as integers; ``sum`` adds in merge order —
        merging per-chain histograms in chain order therefore yields
        the same bits as one histogram fed the concatenated streams.
        """
        if other.bounds != self.bounds:
            raise StatsCollisionError(
                f"histogram merge with mismatched bounds: "
                f"{self.bounds} vs {other.bounds}")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None:
            self.min = other.min if self.min is None \
                else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None \
                else max(self.max, other.max)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable copy of the full state."""
        return {"kind": HIST, "bounds": list(self.bounds),
                "counts": list(self.counts), "count": self.count,
                "sum": self.sum, "min": self.min, "max": self.max}

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from :meth:`snapshot` output."""
        hist = cls(data["bounds"])
        hist.counts = [int(n) for n in data["counts"]]
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        hist.min = data["min"] if data["min"] is None \
            else float(data["min"])
        hist.max = data["max"] if data["max"] is None \
            else float(data["max"])
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram(count={self.count}, sum={self.sum:.6g}, "
                f"buckets={len(self.bounds)})")


class RollingGauge:
    """The recent trajectory of a moving quantity, plus lifetime extrema."""

    __slots__ = ("window", "samples", "count", "min", "max")

    def __init__(self, window: int = DEFAULT_WINDOW):  # noqa: D107
        if window < 1:
            raise ValueError("rolling gauge window must be >= 1")
        self.window = int(window)
        self.samples: List[float] = []
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        """Append one sample (oldest samples fall off the window)."""
        value = float(value)
        self.samples.append(value)
        if len(self.samples) > self.window:
            del self.samples[:len(self.samples) - self.window]
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def last(self) -> Optional[float]:
        """The most recent sample (None before the first)."""
        return self.samples[-1] if self.samples else None

    def merge(self, other: "RollingGauge") -> None:
        """Concatenate another gauge's window after this one's.

        Windows must agree; the merged window keeps the newest samples,
        so merging chain gauges in chain order ends on the last chain's
        trajectory — a deterministic rule, if an arbitrary one.
        """
        if other.window != self.window:
            raise StatsCollisionError(
                f"rolling merge with mismatched windows: "
                f"{self.window} vs {other.window}")
        self.samples.extend(other.samples)
        if len(self.samples) > self.window:
            del self.samples[:len(self.samples) - self.window]
        self.count += other.count
        if other.min is not None:
            self.min = other.min if self.min is None \
                else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None \
                else max(self.max, other.max)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable copy of the full state."""
        return {"kind": ROLLING, "window": self.window,
                "samples": list(self.samples), "count": self.count,
                "min": self.min, "max": self.max,
                "last": self.last}

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "RollingGauge":
        """Rebuild a gauge from :meth:`snapshot` output."""
        gauge = cls(data["window"])
        gauge.samples = [float(v) for v in data["samples"]]
        gauge.count = int(data["count"])
        gauge.min = data["min"] if data["min"] is None \
            else float(data["min"])
        gauge.max = data["max"] if data["max"] is None \
            else float(data["max"])
        return gauge


class MetricsRegistry:
    """Namespaced, collision-safe registry of streaming instruments.

    The streaming sibling of :class:`StatsRegistry`: keys follow the
    same ``<namespace>.<name>`` rule, an instrument is *declared* once
    (get-or-create — re-declaring with different parameters raises),
    and :meth:`merge` combines per-chain registries deterministically
    in call order.
    """

    def __init__(self) -> None:  # noqa: D107
        self._hists: Dict[str, Histogram] = {}
        self._rollings: Dict[str, RollingGauge] = {}

    def _check_key(self, key: str) -> None:
        if not _KEY_RE.match(key):
            raise ValueError(
                f"metrics key {key!r} is not namespaced "
                "(expected '<namespace>.<name>', lowercase)")
        if key in self._hists and key in self._rollings:  # pragma: no cover
            raise StatsCollisionError(f"metrics key {key!r} has two kinds")

    # -- declaring / observing -------------------------------------------

    def histogram(self, key: str,
                  bounds: Iterable[float] = LATENCY_BUCKETS) -> Histogram:
        """Get or create the histogram at ``key``."""
        self._check_key(key)
        if key in self._rollings:
            raise StatsCollisionError(
                f"metrics key {key!r} is a rolling gauge, not a histogram")
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = Histogram(bounds)
        elif hist.bounds != tuple(float(b) for b in bounds):
            raise StatsCollisionError(
                f"histogram {key!r} re-declared with different bounds")
        return hist

    def rolling(self, key: str,
                window: int = DEFAULT_WINDOW) -> RollingGauge:
        """Get or create the rolling gauge at ``key``."""
        self._check_key(key)
        if key in self._hists:
            raise StatsCollisionError(
                f"metrics key {key!r} is a histogram, not a rolling gauge")
        gauge = self._rollings.get(key)
        if gauge is None:
            gauge = self._rollings[key] = RollingGauge(window)
        elif gauge.window != int(window):
            raise StatsCollisionError(
                f"rolling gauge {key!r} re-declared with different window")
        return gauge

    def observe(self, key: str, value: float,
                bounds: Iterable[float] = LATENCY_BUCKETS) -> None:
        """Shorthand: one histogram observation."""
        self.histogram(key, bounds).observe(value)

    def record(self, key: str, value: float,
               window: int = DEFAULT_WINDOW) -> None:
        """Shorthand: one rolling-gauge sample."""
        self.rolling(key, window).record(value)

    # -- combining / views ------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Accumulate another registry instrument-wise (kinds must agree)."""
        for key, hist in other._hists.items():
            if key in self._rollings:
                raise StatsCollisionError(
                    f"merge kind mismatch for {key!r}: rolling vs hist")
            self.histogram(key, hist.bounds).merge(hist)
        for key, gauge in other._rollings.items():
            if key in self._hists:
                raise StatsCollisionError(
                    f"merge kind mismatch for {key!r}: hist vs rolling")
            self.rolling(key, gauge.window).merge(gauge)

    def histograms(self) -> Dict[str, Histogram]:
        """The histogram instruments, in declaration order."""
        return dict(self._hists)

    def rollings(self) -> Dict[str, RollingGauge]:
        """The rolling-gauge instruments, in declaration order."""
        return dict(self._rollings)

    def __len__(self) -> int:
        return len(self._hists) + len(self._rollings)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """``{key: instrument snapshot}`` for every instrument.

        The transport form: chain workers ship this back through the
        process pool and the engine rebuilds with
        :meth:`from_snapshot` — a plain dict pickles smaller and more
        stably than live instruments.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for key, hist in self._hists.items():
            out[key] = hist.snapshot()
        for key, gauge in self._rollings.items():
            out[key] = gauge.snapshot()
        return out

    @classmethod
    def from_snapshot(cls, data: Dict[str, Dict[str, Any]]
                      ) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        for key, snap in data.items():
            if snap.get("kind") == ROLLING:
                registry._rollings[key] = RollingGauge.from_snapshot(snap)
            else:
                registry._hists[key] = Histogram.from_snapshot(snap)
        return registry


# -- export ---------------------------------------------------------------

#: StatsRegistry kinds rendered as Prometheus counters (monotone
#: totals); everything else numeric renders as a gauge.
_COUNTER_KINDS = (COUNT, WORK, TIME)


def _prom_name(key: str, prefix: str) -> str:
    """``serve.job_seconds`` -> ``repro_serve_job_seconds``."""
    return f"{prefix}_{key.replace('.', '_')}"


def _prom_num(value: float) -> str:
    """A float in the exposition format (ints stay unadorned)."""
    if value != value:  # pragma: no cover - NaN guard
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(stats: Optional[StatsRegistry],
                      metrics: Optional["MetricsRegistry"] = None,
                      prefix: str = "repro") -> str:
    """The full registry family in Prometheus text exposition format.

    ``stats`` entries become counters (``count``/``work``/``time``
    kinds) or gauges (the rest); histograms emit the standard
    ``_bucket``/``_sum``/``_count`` triplet with cumulative
    ``le``-labelled buckets; rolling gauges emit their last sample as
    a gauge plus ``_min``/``_max`` companions.
    """
    lines: List[str] = []
    if stats is not None:
        kinds = stats.kinds()
        for key, value in stats.as_dict().items():
            name = _prom_name(key, prefix)
            ptype = "counter" if kinds[key] in _COUNTER_KINDS else "gauge"
            lines.append(f"# TYPE {name} {ptype}")
            lines.append(f"{name} {_prom_num(value)}")
    if metrics is not None:
        for key, hist in metrics.histograms().items():
            name = _prom_name(key, prefix)
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                lines.append(f'{name}_bucket{{le="{_prom_num(bound)}"}} '
                             f"{cumulative}")
            cumulative += hist.counts[-1]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_prom_num(hist.sum)}")
            lines.append(f"{name}_count {hist.count}")
        for key, gauge in metrics.rollings().items():
            name = _prom_name(key, prefix)
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_num(gauge.last or 0.0)}")
            if gauge.min is not None:
                lines.append(f"{name}_min {_prom_num(gauge.min)}")
            if gauge.max is not None:
                lines.append(f"{name}_max {_prom_num(gauge.max)}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_metrics_json(stats: Optional[StatsRegistry],
                        metrics: Optional["MetricsRegistry"] = None,
                        meta: Optional[Dict[str, Any]] = None) -> str:
    """The same payload as one JSON document (sorted keys)."""
    doc: Dict[str, Any] = {"schema_version": 1}
    if meta:
        doc.update(meta)
    if stats is not None:
        doc["counters"] = stats.as_dict()
        doc["counter_kinds"] = stats.kinds()
    if metrics is not None:
        doc["instruments"] = metrics.snapshot()
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """A minimal exposition-format parser (round-trips our renderer).

    Returns ``{metric name: {"type": ..., "samples": {sample name or
    (sample name, le): value}}}``.  Only what :func:`render_prometheus`
    emits is supported: ``# TYPE`` comments, bare samples, and
    single-``le``-labelled bucket samples.
    """
    out: Dict[str, Dict[str, Any]] = {}

    def family(name: str) -> Dict[str, Any]:
        return out.setdefault(name, {"type": "untyped", "samples": {}})

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                family(parts[2])["type"] = parts[3]
            continue
        sample, value_text = line.rsplit(" ", 1)
        value = float(value_text)
        if "{" in sample:
            name, _, label_text = sample.partition("{")
            labels = label_text.rstrip("}")
            key, _, raw_le = labels.partition("=")
            if key != "le":
                raise ValueError(f"unsupported label set: {line!r}")
            le = raw_le.strip('"')
            base = name[:-len("_bucket")] if name.endswith("_bucket") \
                else name
            family(base)["samples"][(name, le)] = value
        else:
            base = name = sample
            for suffix in ("_sum", "_count", "_min", "_max"):
                if name.endswith(suffix) and name[:-len(suffix)] in out:
                    base = name[:-len(suffix)]
                    break
            family(base)["samples"][name] = value
    return out
