"""Congestion-map artifacts: per-K-point GCell heatmaps (CSV + ASCII).

The Figure-3 methodology iterates K until the congestion map is
acceptable; these artifacts are that map, one pair of files per
evaluated K point, so a run leaves behind the exact view the loop
gated on:

* ``<prefix>_<idx>_k<k>.csv`` — long-format GCell table
  (``x,y,utilization,overflow``), loadable by any plotting tool;
* ``<prefix>_<idx>_k<k>.txt`` — the ASCII heatmap rendering (via
  :func:`repro.io.report.render_heatmap`) plus summary counts, for
  eyeballing how violations shrink as K rises.
"""

from __future__ import annotations

import os
from typing import List, Sequence

from ..io.report import render_heatmap

__all__ = ["congestion_map_csv", "congestion_map_text",
           "write_congestion_artifacts"]


def congestion_map_csv(grid) -> str:
    """Long-format CSV of per-GCell utilization and overflow."""
    util = grid.utilization_map()
    over = grid.overflow_map()
    lines = ["x,y,utilization,overflow"]
    for x in range(grid.nx):
        for y in range(grid.ny):
            lines.append(f"{x},{y},{util[x, y]:.4f},{int(over[x, y])}")
    return "\n".join(lines) + "\n"


def congestion_map_text(grid, title: str = "") -> str:
    """ASCII heatmap of GCell congestion with a summary header."""
    header = (f"{title}\n" if title else "") + (
        f"grid {grid.nx}x{grid.ny} (hcap={grid.hcap}, vcap={grid.vcap}) "
        f"overflow={grid.overflow_total()} max_edge={grid.overflow_max()}")
    return header + "\n" + render_heatmap(grid.utilization_map())


def _k_tag(k: float) -> str:
    return f"{k:g}".replace(".", "p").replace("-", "m")


def write_congestion_artifacts(points: Sequence, directory: str,
                               prefix: str = "congestion") -> List[str]:
    """Dump one CSV + one ASCII heatmap per evaluated point.

    ``points`` are :class:`~repro.core.flow.EvalPoint`-likes (anything
    with ``k`` and a ``routing`` carrying a grid); points without a
    routing result are skipped.  Returns the written paths.
    """
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    for idx, point in enumerate(points):
        routing = getattr(point, "routing", None)
        if routing is None:
            continue
        stem = f"{prefix}_{idx:02d}_k{_k_tag(point.k)}"
        csv_path = os.path.join(directory, stem + ".csv")
        with open(csv_path, "w") as handle:
            handle.write(congestion_map_csv(routing.grid))
        txt_path = os.path.join(directory, stem + ".txt")
        title = (f"K={point.k:g} violations={routing.violations} "
                 f"overflowed_nets={routing.overflowed_nets}")
        with open(txt_path, "w") as handle:
            handle.write(congestion_map_text(routing.grid, title) + "\n")
        written.extend([csv_path, txt_path])
    return written
