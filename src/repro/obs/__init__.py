"""Run-scoped observability: tracing, typed stats, congestion artifacts.

This package is the instrumentation layer every flow stage reports
through:

* :class:`StatsRegistry` — namespaced, collision-safe, typed counters
  that merge deterministically across process-pool workers;
* :class:`Tracer` / :class:`Span` — the hierarchical span tree of one
  run (run → sweep → k-point → phase) with monotonic wall-times,
  emittable as JSON-lines;
* :func:`profile_report` — per-phase time/counter breakdown tables;
* :func:`write_congestion_artifacts` — per-K-point GCell overflow
  heatmaps (CSV + ASCII).
"""

from .artifacts import (
    congestion_map_csv,
    congestion_map_text,
    write_congestion_artifacts,
)
from .profile import merged_counters, phase_breakdown, profile_report
from .registry import (
    COUNT,
    ENV,
    GAUGE,
    KINDS,
    METRIC,
    StatEntry,
    StatsCollisionError,
    StatsRegistry,
    TIME,
    WORK,
)
from .tracer import Span, TraceError, Tracer

__all__ = [
    "COUNT",
    "ENV",
    "GAUGE",
    "KINDS",
    "METRIC",
    "Span",
    "StatEntry",
    "StatsCollisionError",
    "StatsRegistry",
    "TIME",
    "TraceError",
    "Tracer",
    "WORK",
    "congestion_map_csv",
    "congestion_map_text",
    "merged_counters",
    "phase_breakdown",
    "profile_report",
    "write_congestion_artifacts",
]
