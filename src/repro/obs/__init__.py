"""Run-scoped observability: tracing, typed stats, congestion artifacts.

This package is the instrumentation layer every flow stage reports
through:

* :class:`StatsRegistry` — namespaced, collision-safe, typed counters
  that merge deterministically across process-pool workers;
* :class:`Tracer` / :class:`Span` — the hierarchical span tree of one
  run (run → sweep → k-point → phase) with monotonic wall-times,
  emittable as JSON-lines;
* :func:`profile_report` — per-phase time/counter breakdown tables;
* :func:`write_congestion_artifacts` — per-K-point GCell overflow
  heatmaps (CSV + ASCII).
"""

# Import order matters: registry/tracer/metrics are leaf modules, while
# artifacts/profile reach back through repro.io -> repro.place ->
# repro.library, whose cache module imports StatsRegistry from here.
# Loading the leaves first means that even when this package is the
# *entry point* of that cycle, the partially initialized module already
# exposes the names the cycle needs.
from .registry import (
    COUNT,
    ENV,
    GAUGE,
    KINDS,
    METRIC,
    StatEntry,
    StatsCollisionError,
    StatsRegistry,
    TIME,
    WORK,
)
from .tracer import Span, TraceError, Tracer
from .metrics import (
    BYTE_BUCKETS,
    HIST,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    ROLLING,
    RollingGauge,
    parse_prometheus,
    render_metrics_json,
    render_prometheus,
)
from .artifacts import (
    congestion_map_csv,
    congestion_map_text,
    write_congestion_artifacts,
)
from .profile import merged_counters, phase_breakdown, profile_report

__all__ = [
    "BYTE_BUCKETS",
    "COUNT",
    "ENV",
    "GAUGE",
    "HIST",
    "Histogram",
    "KINDS",
    "LATENCY_BUCKETS",
    "METRIC",
    "MetricsRegistry",
    "ROLLING",
    "RollingGauge",
    "Span",
    "StatEntry",
    "StatsCollisionError",
    "StatsRegistry",
    "TIME",
    "TraceError",
    "Tracer",
    "WORK",
    "congestion_map_csv",
    "congestion_map_text",
    "merged_counters",
    "parse_prometheus",
    "phase_breakdown",
    "profile_report",
    "render_metrics_json",
    "render_prometheus",
    "write_congestion_artifacts",
]
