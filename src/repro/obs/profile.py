"""Per-phase time/counter breakdowns rendered from a span tree.

The ``--profile`` CLI flag and the benchmark harness turn one run's
span tree into two fixed-width tables (via :mod:`repro.io.report`):

* **Phases** — every distinct span *path* (``run/sweep/k_point/map``)
  with its call count, total/mean wall-time and share of the run.
* **Counters** — every counter recorded anywhere in the tree, merged
  by the registry's per-kind rules, with its kind spelled out so
  deterministic results are distinguishable from wall-times and
  plan-dependent work counts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..io.report import format_table
from .registry import StatsRegistry
from .tracer import Span

__all__ = ["merged_counters", "phase_breakdown", "profile_report"]


def phase_breakdown(root: Span) -> List[Tuple[str, int, float]]:
    """(phase path, calls, total seconds) per distinct span path.

    Paths are slash-joined span names (no child indexes), so the many
    ``k_point`` spans of a sweep aggregate into one row.  Rows appear
    in first-visit (depth-first) order.
    """
    order: List[str] = []
    calls: Dict[str, int] = {}
    total: Dict[str, float] = {}

    def visit(span: Span, prefix: str) -> None:
        path = f"{prefix}/{span.name}" if prefix else span.name
        if path not in calls:
            order.append(path)
            calls[path] = 0
            total[path] = 0.0
        calls[path] += 1
        total[path] += span.duration
        for child in span.children:
            visit(child, path)

    visit(root, "")
    return [(path, calls[path], total[path]) for path in order]


def merged_counters(root: Span) -> StatsRegistry:
    """All counters in the tree, merged depth-first in span order."""
    return StatsRegistry.merged(span.counters for span in root.iter_spans())


def profile_report(root: Span) -> str:
    """The full ``--profile`` text: phase table + counter table."""
    rows = phase_breakdown(root)
    run_total = root.duration or max((t for _, _, t in rows), default=0.0)
    phase_rows = []
    for path, ncalls, total in rows:
        share = 100.0 * total / run_total if run_total > 0 else 0.0
        phase_rows.append((path, ncalls, f"{total:.4f}",
                           f"{total / ncalls:.4f}", f"{share:.1f}"))
    phases = format_table(
        ["Phase", "Calls", "Total s", "Mean s", "Share %"], phase_rows,
        title="Per-phase breakdown")

    counters = merged_counters(root)
    kinds = counters.kinds()
    counter_rows = [(key, kinds[key],
                     value if isinstance(value, int) else f"{value:.6g}")
                    for key, value in sorted(counters.as_dict().items())]
    table = format_table(["Counter", "Kind", "Value"], counter_rows,
                         title="Merged counters")
    return phases + "\n\n" + table
