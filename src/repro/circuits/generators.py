"""Seeded synthetic circuit generators.

The IWLS93 benchmark files are not redistributable here, so the
benchmarks are *generated*: random PLAs whose structural profile
(input/output counts, product-term width, cross-output sharing) matches
the circuit class of the paper's benchmarks, plus random multi-level
logic for tests.  Everything is deterministic in the seed.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from ..network.boolnet import BooleanNetwork
from ..network.sop import Sop
from .pla import Pla


def random_pla(name: str, num_inputs: int, num_outputs: int,
               num_products: int, literals: Tuple[int, int] = (4, 9),
               outputs_per_product: Tuple[int, int] = (1, 4),
               groups: int = 1, input_window: Optional[int] = None,
               seed: int = 0) -> Pla:
    """A random PLA with controlled sharing and locality.

    ``literals`` bounds the input literals per product;
    ``outputs_per_product`` bounds how many outputs each product feeds —
    the knob that creates the shared, high-fanout product terms whose
    wiring the paper's congestion argument hinges on.

    ``groups > 1`` adds the cluster structure real control-logic PLAs
    have: outputs are divided into contiguous groups, each product
    belongs to one group (feeding only that group's outputs), and each
    group reads a contiguous window of ``input_window`` inputs
    (overlapping with its neighbours').  More groups / narrower windows
    ⇒ more placeable; ``groups=1`` is the fully global flat PLA.
    """
    rng = random.Random(seed)
    inputs = [f"i{k}" for k in range(num_inputs)]
    outputs = [f"o{k}" for k in range(num_outputs)]
    pla = Pla(name=name, inputs=inputs, outputs=outputs)
    groups = max(1, min(groups, num_outputs))
    window = input_window if input_window is not None else num_inputs
    window = max(2, min(window, num_inputs))
    # Contiguous output ranges per group.
    bounds = [round(g * num_outputs / groups) for g in range(groups + 1)]
    group_outputs = [list(range(bounds[g], bounds[g + 1]))
                     for g in range(groups)]
    group_outputs = [g or [0] for g in group_outputs]
    # Overlapping input windows (wrap around).
    stride = num_inputs / groups if groups > 1 else 0
    group_inputs = []
    for g in range(groups):
        start = int(round(g * stride)) % num_inputs
        group_inputs.append([(start + j) % num_inputs for j in range(window)])
    for p in range(num_products):
        g = p % groups
        pool = group_inputs[g]
        width = min(rng.randint(*literals), len(pool))
        vars_ = rng.sample(pool, width)
        input_part = ["-"] * num_inputs
        for v in vars_:
            input_part[v] = rng.choice("01")
        outs_pool = group_outputs[g]
        count = min(rng.randint(*outputs_per_product), len(outs_pool))
        outs = rng.sample(outs_pool, count)
        output_part = ["0"] * num_outputs
        for o in outs:
            output_part[o] = "1"
        pla.add_product("".join(input_part), "".join(output_part))
    # Guarantee every output has at least one product.
    for o in range(num_outputs):
        if not any(out[o] == "1" for _, out in pla.products):
            input_part, output_part = pla.products[rng.randrange(len(pla.products))]
            fixed = output_part[:o] + "1" + output_part[o + 1:]
            idx = pla.products.index((input_part, output_part))
            pla.products[idx] = (input_part, fixed)
    return pla


def random_logic_network(name: str, num_inputs: int, num_nodes: int,
                         num_outputs: int, cubes: Tuple[int, int] = (2, 4),
                         cube_width: Tuple[int, int] = (2, 3),
                         locality: int = 12, seed: int = 0) -> BooleanNetwork:
    """A random multi-level network for tests and small experiments.

    ``locality`` bounds how far back a node's fanins reach in creation
    order, giving the network realistic (non-global) structure.
    """
    rng = random.Random(seed)
    network = BooleanNetwork(name)
    signals = [network.add_input(f"i{k}") for k in range(num_inputs)]
    for j in range(num_nodes):
        pool = signals[-locality:] if len(signals) > locality else signals
        cube_list = []
        for _ in range(rng.randint(*cubes)):
            width = min(rng.randint(*cube_width), len(pool))
            chosen = rng.sample(pool, width)
            cube_list.append([(s, rng.random() < 0.6) for s in chosen])
        node = network.add_node(f"g{j}", Sop.from_cubes(cube_list))
        signals.append(node.name)
    node_names = [s for s in signals if s.startswith("g")]
    chosen = node_names[-num_outputs:] if len(node_names) >= num_outputs \
        else node_names
    for name_ in chosen:
        network.add_output(name_)
    network.remove_dangling()
    return network
