"""IWLS93-like benchmark stand-ins: SPLA, PDC, TOO_LARGE.

The paper's circuits are PLAs from the IWLS93 suite (SPLA: 22,834 base
gates; PDC: 23,058; TOO_LARGE: 27,977 after two-input decomposition).
The originals are not redistributable here, so these constructors
generate seeded random PLAs with the same *structural profile* — wide
product terms over a modest input count, shared across many outputs —
scaled down by default to ``scale = 0.125`` so the pure-Python place &
route fits an interactive budget.  ``scale = 1.0`` reproduces the
paper-size circuits (slow).

The congestion phenomenology the paper studies lives in this structure
(shared product terms become high-fanout nodes; aggressive literal
minimisation increases sharing further), not in the specific truth
tables, so the K-sweep behaviour survives the substitution; see
DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..network.boolnet import BooleanNetwork
from .generators import random_pla
from .pla import Pla

DEFAULT_SCALE = 0.125


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generator parameters for one paper circuit at scale 1.0."""

    name: str
    paper_base_gates: int
    num_inputs: int
    num_outputs: int
    num_products: int
    literals: Tuple[int, int]
    outputs_per_product: Tuple[int, int]
    seed: int
    groups: int = 8
    input_window: int = 10


#: Profiles calibrated so decomposition lands close to the paper's
#: base-gate counts at scale 1.0.
SPLA_PROFILE = BenchmarkProfile(
    name="spla_like", paper_base_gates=22_834, num_inputs=16,
    num_outputs=46, num_products=1460, literals=(5, 11),
    outputs_per_product=(1, 4), seed=16_993, groups=10, input_window=9)
PDC_PROFILE = BenchmarkProfile(
    name="pdc_like", paper_base_gates=23_058, num_inputs=16,
    num_outputs=40, num_products=1420, literals=(5, 12),
    outputs_per_product=(1, 5), seed=40_993, groups=8, input_window=10)
TOO_LARGE_PROFILE = BenchmarkProfile(
    name="too_large_like", paper_base_gates=27_977, num_inputs=38,
    num_outputs=17, num_products=1550, literals=(6, 13),
    outputs_per_product=(1, 3), seed=38_993, groups=8, input_window=16)


def _scaled_pla(profile: BenchmarkProfile, scale: float) -> Pla:
    """Generate the profile's PLA at a given size scale."""
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    products = max(8, round(profile.num_products * scale))
    outputs = max(2, round(profile.num_outputs * math.sqrt(scale)))
    groups = max(2, round(profile.groups * math.sqrt(scale))) \
        if profile.groups > 1 else 1
    return random_pla(
        name=f"{profile.name}_s{scale:g}",
        num_inputs=profile.num_inputs,
        num_outputs=outputs,
        num_products=products,
        literals=profile.literals,
        outputs_per_product=(
            profile.outputs_per_product[0],
            min(profile.outputs_per_product[1], outputs)),
        groups=min(groups, outputs),
        input_window=profile.input_window,
        seed=profile.seed)


def spla_like(scale: float = DEFAULT_SCALE) -> BooleanNetwork:
    """The SPLA stand-in as a two-level Boolean network."""
    return _scaled_pla(SPLA_PROFILE, scale).to_network()


def pdc_like(scale: float = DEFAULT_SCALE) -> BooleanNetwork:
    """The PDC stand-in as a two-level Boolean network."""
    return _scaled_pla(PDC_PROFILE, scale).to_network()


def too_large_like(scale: float = DEFAULT_SCALE) -> BooleanNetwork:
    """The TOO_LARGE stand-in as a two-level Boolean network."""
    return _scaled_pla(TOO_LARGE_PROFILE, scale).to_network()


def benchmark(name: str, scale: float = DEFAULT_SCALE) -> BooleanNetwork:
    """Look up a stand-in by (case-insensitive) paper name."""
    table = {
        "spla": spla_like,
        "pdc": pdc_like,
        "too_large": too_large_like,
    }
    key = name.lower().removesuffix("_like")
    if key not in table:
        raise KeyError(f"unknown benchmark {name!r}; have {sorted(table)}")
    return table[key](scale)
