"""Arithmetic circuit constructors (examples and extra workloads).

Classic datapath blocks built directly as Boolean networks: ripple
adders, array multipliers, comparators and mux trees.  These exercise
the full flow on structured (non-PLA) logic and back the example
scripts.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import NetworkError
from ..network.boolnet import BooleanNetwork
from ..network.sop import Sop
from ..network.cubes import lit


def _xor(network: BooleanNetwork, name: str, a: str, b: str) -> str:
    network.add_node(name, Sop.from_cubes([
        [lit(a, True), lit(b, False)],
        [lit(a, False), lit(b, True)],
    ]))
    return name


def _maj(network: BooleanNetwork, name: str, a: str, b: str, c: str) -> str:
    network.add_node(name, Sop.from_cubes([
        [lit(a, True), lit(b, True)],
        [lit(a, True), lit(c, True)],
        [lit(b, True), lit(c, True)],
    ]))
    return name


def _and(network: BooleanNetwork, name: str, a: str, b: str) -> str:
    network.add_node(name, Sop.from_cubes([[lit(a, True), lit(b, True)]]))
    return name


def ripple_carry_adder(width: int, name: str = "rca") -> BooleanNetwork:
    """An n-bit ripple-carry adder: inputs a*, b*, cin; outputs s*, cout."""
    if width < 1:
        raise NetworkError("adder width must be >= 1")
    network = BooleanNetwork(f"{name}{width}")
    a = [network.add_input(f"a{k}") for k in range(width)]
    b = [network.add_input(f"b{k}") for k in range(width)]
    carry = network.add_input("cin")
    for k in range(width):
        p = _xor(network, f"p{k}", a[k], b[k])
        _xor(network, f"s{k}", p, carry)
        carry = _maj(network, f"c{k}", a[k], b[k], carry)
        network.add_output(f"s{k}")
    network.add_output(carry)
    return network


def array_multiplier(width: int, name: str = "mul") -> BooleanNetwork:
    """An n×n array multiplier; outputs m0..m(2n-1)."""
    if width < 1:
        raise NetworkError("multiplier width must be >= 1")
    network = BooleanNetwork(f"{name}{width}")
    a = [network.add_input(f"a{k}") for k in range(width)]
    b = [network.add_input(f"b{k}") for k in range(width)]
    # Partial products.
    pp: List[List[str]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            pp[i + j].append(_and(network, f"pp_{i}_{j}", a[i], b[j]))
    # Carry-save reduction with full/half adders.
    uid = [0]

    def full_adder(x: str, y: str, z: str) -> Tuple[str, str]:
        uid[0] += 1
        t = _xor(network, f"fx{uid[0]}", x, y)
        s = _xor(network, f"fs{uid[0]}", t, z)
        c = _maj(network, f"fc{uid[0]}", x, y, z)
        return s, c

    def half_adder(x: str, y: str) -> Tuple[str, str]:
        uid[0] += 1
        s = _xor(network, f"hs{uid[0]}", x, y)
        c = _and(network, f"hc{uid[0]}", x, y)
        return s, c

    for column in range(2 * width):
        while len(pp[column]) > 1:
            if len(pp[column]) >= 3:
                x, y, z = pp[column][:3]
                pp[column] = pp[column][3:]
                s, c = full_adder(x, y, z)
            else:
                x, y = pp[column][:2]
                pp[column] = pp[column][2:]
                s, c = half_adder(x, y)
            pp[column].append(s)
            if column + 1 < 2 * width:
                pp[column + 1].append(c)
        bit = pp[column][0] if pp[column] else None
        out = f"m{column}"
        if bit is None:
            # Top column can be empty for width 1.
            network.add_node(out, Sop.zero())
        else:
            network.add_node(out, Sop.literal(bit))
        network.add_output(out)
    return network


def comparator(width: int, name: str = "cmp") -> BooleanNetwork:
    """n-bit equality and greater-than comparator (outputs eq, gt)."""
    if width < 1:
        raise NetworkError("comparator width must be >= 1")
    network = BooleanNetwork(f"{name}{width}")
    a = [network.add_input(f"a{k}") for k in range(width)]
    b = [network.add_input(f"b{k}") for k in range(width)]
    eq_terms: List[str] = []
    for k in range(width):
        network.add_node(f"eq{k}", Sop.from_cubes([
            [lit(a[k], True), lit(b[k], True)],
            [lit(a[k], False), lit(b[k], False)],
        ]))
        eq_terms.append(f"eq{k}")
    network.add_node("eq", Sop.from_cubes([[lit(t, True) for t in eq_terms]]))
    network.add_output("eq")
    # gt: first (most significant) position where a=1, b=0 and all higher equal.
    gt_cubes = []
    for k in range(width - 1, -1, -1):
        lits = [lit(a[k], True), lit(b[k], False)]
        lits += [lit(eq_terms[j], True) for j in range(k + 1, width)]
        gt_cubes.append(lits)
    network.add_node("gt", Sop.from_cubes(gt_cubes))
    network.add_output("gt")
    return network


def mux_tree(select_bits: int, name: str = "mux") -> BooleanNetwork:
    """A 2^k-to-1 multiplexer tree (inputs d*, s*; output y)."""
    if select_bits < 1:
        raise NetworkError("mux needs at least one select bit")
    network = BooleanNetwork(f"{name}{select_bits}")
    data = [network.add_input(f"d{k}") for k in range(1 << select_bits)]
    sel = [network.add_input(f"s{k}") for k in range(select_bits)]
    level = data
    for s in range(select_bits):
        nxt: List[str] = []
        for pair in range(len(level) // 2):
            lo, hi = level[2 * pair], level[2 * pair + 1]
            node = f"x{s}_{pair}"
            network.add_node(node, Sop.from_cubes([
                [lit(lo, True), lit(sel[s], False)],
                [lit(hi, True), lit(sel[s], True)],
            ]))
            nxt.append(node)
        level = nxt
    network.add_node("y", Sop.literal(level[0]))
    network.add_output("y")
    return network
