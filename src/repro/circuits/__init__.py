"""Benchmark circuits: PLA format, generators, IWLS93-like stand-ins."""

from .arithmetic import array_multiplier, comparator, mux_tree, ripple_carry_adder
from .generators import random_logic_network, random_pla
from .iwls_like import (
    DEFAULT_SCALE,
    PDC_PROFILE,
    SPLA_PROFILE,
    TOO_LARGE_PROFILE,
    benchmark,
    pdc_like,
    spla_like,
    too_large_like,
)
from .pla import Pla, dump_pla, parse_pla

__all__ = [
    "DEFAULT_SCALE",
    "PDC_PROFILE",
    "Pla",
    "SPLA_PROFILE",
    "TOO_LARGE_PROFILE",
    "array_multiplier",
    "benchmark",
    "comparator",
    "dump_pla",
    "mux_tree",
    "parse_pla",
    "pdc_like",
    "random_logic_network",
    "random_pla",
    "ripple_carry_adder",
    "spla_like",
    "too_large_like",
]
