"""PLA (two-level) circuit representation and the Espresso .pla format.

SPLA and PDC — the paper's benchmarks — are PLA circuits from the
IWLS93 suite: wide two-level covers with heavy product-term sharing
across outputs.  This module gives that class a first-class type with
Espresso-compatible text I/O and conversion to
:class:`repro.network.boolnet.BooleanNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from ..network.boolnet import BooleanNetwork
from ..network.cubes import lit
from ..network.sop import Sop


@dataclass
class Pla:
    """A programmable-logic-array description.

    ``products`` holds (input_part, output_part) rows: the input part is
    over ``{'0', '1', '-'}`` (complemented / positive / absent literal),
    the output part over ``{'0', '1'}`` (the ``f``-type cover: '1' means
    the product belongs to that output's ON-set cover).
    """

    name: str
    inputs: List[str]
    outputs: List[str]
    products: List[Tuple[str, str]] = field(default_factory=list)

    def add_product(self, input_part: str, output_part: str) -> None:
        """Append one product row (validated)."""
        if len(input_part) != len(self.inputs):
            raise ParseError(
                f"input part {input_part!r} has wrong width "
                f"(expected {len(self.inputs)})")
        if len(output_part) != len(self.outputs):
            raise ParseError(
                f"output part {output_part!r} has wrong width "
                f"(expected {len(self.outputs)})")
        if set(input_part) - set("01-"):
            raise ParseError(f"bad input part {input_part!r}")
        if set(output_part) - set("01"):
            raise ParseError(f"bad output part {output_part!r}")
        self.products.append((input_part, output_part))

    def num_products(self) -> int:
        """Product-term count."""
        return len(self.products)

    def product_sharing(self) -> float:
        """Mean number of outputs each product feeds (≥ 1)."""
        if not self.products:
            return 0.0
        total = sum(out.count("1") for _, out in self.products)
        return total / len(self.products)

    def to_network(self) -> BooleanNetwork:
        """Lower to a two-level Boolean network (one node per output)."""
        network = BooleanNetwork(self.name)
        for name in self.inputs:
            network.add_input(name)
        covers: Dict[str, List] = {name: [] for name in self.outputs}
        for input_part, output_part in self.products:
            lits = []
            for bit, name in zip(input_part, self.inputs):
                if bit == "1":
                    lits.append(lit(name, True))
                elif bit == "0":
                    lits.append(lit(name, False))
            for bit, out_name in zip(output_part, self.outputs):
                if bit == "1":
                    covers[out_name].append(list(lits))
        for out_name in self.outputs:
            node_name = f"{out_name}_f" if out_name in network.inputs \
                else out_name
            network.add_node(node_name, Sop.from_cubes(covers[out_name]))
            network.add_output(node_name)
        return network


def parse_pla(text: str, name: str = "pla") -> Pla:
    """Parse the Espresso .pla format (the subset IWLS93 uses)."""
    num_inputs: Optional[int] = None
    num_outputs: Optional[int] = None
    input_names: Optional[List[str]] = None
    output_names: Optional[List[str]] = None
    rows: List[Tuple[str, str]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            key = parts[0]
            if key == ".i":
                num_inputs = int(parts[1])
            elif key == ".o":
                num_outputs = int(parts[1])
            elif key == ".ilb":
                input_names = parts[1:]
            elif key == ".ob":
                output_names = parts[1:]
            elif key in (".p", ".type", ".name"):
                continue
            elif key == ".e":
                break
            else:
                continue  # tolerate unknown directives
        else:
            parts = line.split()
            if len(parts) == 2:
                rows.append((parts[0], parts[1]))
            elif len(parts) == 1 and num_inputs is not None:
                rows.append((parts[0][:num_inputs], parts[0][num_inputs:]))
            else:
                raise ParseError(f"bad product row {line!r}")
    if num_inputs is None or num_outputs is None:
        raise ParseError("missing .i/.o header")
    inputs = input_names or [f"i{k}" for k in range(num_inputs)]
    outputs = output_names or [f"o{k}" for k in range(num_outputs)]
    if len(inputs) != num_inputs or len(outputs) != num_outputs:
        raise ParseError("pin name lists disagree with .i/.o")
    pla = Pla(name=name, inputs=inputs, outputs=outputs)
    for input_part, output_part in rows:
        output_part = output_part.replace("-", "0").replace("~", "0")
        output_part = output_part.replace("2", "0").replace("4", "1")
        pla.add_product(input_part, output_part)
    return pla


def dump_pla(pla: Pla) -> str:
    """Serialise to .pla text."""
    lines = [f".i {len(pla.inputs)}",
             f".o {len(pla.outputs)}",
             ".ilb " + " ".join(pla.inputs),
             ".ob " + " ".join(pla.outputs),
             f".p {len(pla.products)}"]
    for input_part, output_part in pla.products:
        lines.append(f"{input_part} {output_part}")
    lines.append(".e")
    return "\n".join(lines) + "\n"
