"""Simulated-annealing placement refinement.

A classic swap/relocate annealer over a legalized row placement,
minimising half-perimeter wirelength.  Too slow for the large
benchmark circuits (the quadratic flow handles those); used to polish
small blocks and as an independent reference placer in tests.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .floorplan import Floorplan

Point = Tuple[float, float]

#: Annealing engines: batched HPWL delta evaluation vs per-net loops.
VECTOR = "vector"
REFERENCE = "reference"


def hpwl(positions: np.ndarray, nets: Sequence[Sequence[int]],
         fixed: Sequence[Sequence[Point]]) -> float:
    """Total half-perimeter wirelength over all nets."""
    total = 0.0
    for movables, pads in zip(nets, fixed):
        xs: List[float] = [positions[i, 0] for i in movables]
        ys: List[float] = [positions[i, 1] for i in movables]
        for (px, py) in pads:
            xs.append(px)
            ys.append(py)
        if len(xs) >= 2:
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def anneal(positions: np.ndarray, nets: Sequence[Sequence[int]],
           fixed: Sequence[Sequence[Point]], floorplan: Floorplan,
           moves: int = 20_000, seed: int = 0,
           start_temp: Optional[float] = None,
           engine: str = VECTOR) -> np.ndarray:
    """Anneal by swapping cell positions; returns improved positions.

    Swapping positions of equal-footprint treatment keeps legality
    approximately intact for the uniform-size use case (base networks);
    for mapped netlists run :func:`repro.place.legalize.legalize_rows`
    afterwards.  ``engine="vector"`` evaluates the touched nets of each
    move with one batched gather over padded per-net index arrays and
    caches accepted net lengths; the RNG call sequence and every
    accept/reject decision match the reference bit for bit.
    """
    n = positions.shape[0]
    if n < 2 or moves <= 0:
        return positions.copy()
    if engine == VECTOR:
        return _anneal_vector(positions, nets, fixed, moves, seed,
                              start_temp)
    rng = random.Random(seed)
    pos = positions.astype(float).copy()

    # Incremental evaluation: nets touching each cell.
    nets_of: Dict[int, List[int]] = {}
    for net_id, movables in enumerate(nets):
        for cell in movables:
            nets_of.setdefault(cell, []).append(net_id)

    def net_len(net_id: int) -> float:
        movables = nets[net_id]
        pads = fixed[net_id]
        xs = [pos[i, 0] for i in movables] + [p[0] for p in pads]
        ys = [pos[i, 1] for i in movables] + [p[1] for p in pads]
        if len(xs) < 2:
            return 0.0
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    current = sum(net_len(i) for i in range(len(nets)))
    temp = start_temp if start_temp is not None else current / max(1, len(nets)) or 1.0
    cooling = 0.98 ** (1.0 / max(1, moves // 100))
    for _ in range(moves):
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a == b:
            continue
        touched = sorted(set(nets_of.get(a, []) + nets_of.get(b, [])))
        before = sum(net_len(t) for t in touched)
        pos[[a, b]] = pos[[b, a]]
        after = sum(net_len(t) for t in touched)
        delta = after - before
        if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-12)):
            current += delta
        else:
            pos[[a, b]] = pos[[b, a]]
        temp *= cooling
    return pos


def _anneal_vector(positions: np.ndarray, nets: Sequence[Sequence[int]],
                   fixed: Sequence[Sequence[Point]], moves: int,
                   seed: int, start_temp: Optional[float]) -> np.ndarray:
    """Batched annealer.

    Net extents come from padded (net, pin) index arrays masked with
    ±inf; pad (fixed-terminal) extrema are folded in as precomputed
    per-net scalars.  Accepted lengths are cached, so each move costs
    one gather over the touched nets instead of fresh Python loops over
    every pin.  ``max``/``min`` are reduction-order independent and the
    touched-net sums run sequentially over Python floats, keeping every
    delta bitwise equal to the reference's.
    """
    n = positions.shape[0]
    rng = random.Random(seed)
    pos = positions.astype(float).copy()
    num_nets = len(nets)

    dmax = max((len(m) for m in nets), default=0) or 1
    mov = np.zeros((num_nets, dmax), dtype=np.intp)
    mask = np.zeros((num_nets, dmax), dtype=bool)
    pad_max = np.full((num_nets, 2), -np.inf)
    pad_min = np.full((num_nets, 2), np.inf)
    active = np.zeros(num_nets, dtype=bool)
    nets_of: Dict[int, List[int]] = {}
    for net_id, movables in enumerate(nets):
        for cell in movables:
            nets_of.setdefault(cell, []).append(net_id)
        k = len(movables)
        mov[net_id, :k] = movables
        mask[net_id, :k] = True
        pads = fixed[net_id]
        if pads:
            pad_max[net_id, 0] = max(p[0] for p in pads)
            pad_min[net_id, 0] = min(p[0] for p in pads)
            pad_max[net_id, 1] = max(p[1] for p in pads)
            pad_min[net_id, 1] = min(p[1] for p in pads)
        active[net_id] = (k + len(pads)) >= 2

    def batch_lens(ids: np.ndarray) -> np.ndarray:
        pins = mov[ids]
        m = mask[ids]
        xy = pos[pins]                                     # (t, d, 2)
        hi = np.where(m[:, :, None], xy, -np.inf).max(axis=1)
        lo = np.where(m[:, :, None], xy, np.inf).min(axis=1)
        hi = np.maximum(hi, pad_max[ids])
        lo = np.minimum(lo, pad_min[ids])
        span = (hi[:, 0] - lo[:, 0]) + (hi[:, 1] - lo[:, 1])
        return np.where(active[ids], span, 0.0)

    cached = batch_lens(np.arange(num_nets))
    current = sum(cached.tolist())
    temp = start_temp if start_temp is not None \
        else current / max(1, num_nets) or 1.0
    cooling = 0.98 ** (1.0 / max(1, moves // 100))
    for _ in range(moves):
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a == b:
            continue
        touched = sorted(set(nets_of.get(a, []) + nets_of.get(b, [])))
        tids = np.asarray(touched, dtype=np.intp)
        before = sum(cached[tids].tolist())
        pos[[a, b]] = pos[[b, a]]
        new_lens = batch_lens(tids)
        after = sum(new_lens.tolist())
        delta = after - before
        if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-12)):
            cached[tids] = new_lens
        else:
            pos[[a, b]] = pos[[b, a]]
        temp *= cooling
    return pos
