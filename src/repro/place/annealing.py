"""Simulated-annealing placement refinement.

A classic swap/relocate annealer over a legalized row placement,
minimising half-perimeter wirelength.  Too slow for the large
benchmark circuits (the quadratic flow handles those); used to polish
small blocks and as an independent reference placer in tests.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .floorplan import Floorplan

Point = Tuple[float, float]


def hpwl(positions: np.ndarray, nets: Sequence[Sequence[int]],
         fixed: Sequence[Sequence[Point]]) -> float:
    """Total half-perimeter wirelength over all nets."""
    total = 0.0
    for movables, pads in zip(nets, fixed):
        xs: List[float] = [positions[i, 0] for i in movables]
        ys: List[float] = [positions[i, 1] for i in movables]
        for (px, py) in pads:
            xs.append(px)
            ys.append(py)
        if len(xs) >= 2:
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def anneal(positions: np.ndarray, nets: Sequence[Sequence[int]],
           fixed: Sequence[Sequence[Point]], floorplan: Floorplan,
           moves: int = 20_000, seed: int = 0,
           start_temp: Optional[float] = None) -> np.ndarray:
    """Anneal by swapping cell positions; returns improved positions.

    Swapping positions of equal-footprint treatment keeps legality
    approximately intact for the uniform-size use case (base networks);
    for mapped netlists run :func:`repro.place.legalize.legalize_rows`
    afterwards.
    """
    n = positions.shape[0]
    if n < 2 or moves <= 0:
        return positions.copy()
    rng = random.Random(seed)
    pos = positions.astype(float).copy()

    # Incremental evaluation: nets touching each cell.
    nets_of: Dict[int, List[int]] = {}
    for net_id, movables in enumerate(nets):
        for cell in movables:
            nets_of.setdefault(cell, []).append(net_id)

    def net_len(net_id: int) -> float:
        movables = nets[net_id]
        pads = fixed[net_id]
        xs = [pos[i, 0] for i in movables] + [p[0] for p in pads]
        ys = [pos[i, 1] for i in movables] + [p[1] for p in pads]
        if len(xs) < 2:
            return 0.0
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    current = sum(net_len(i) for i in range(len(nets)))
    temp = start_temp if start_temp is not None else current / max(1, len(nets)) or 1.0
    cooling = 0.98 ** (1.0 / max(1, moves // 100))
    for _ in range(moves):
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a == b:
            continue
        touched = sorted(set(nets_of.get(a, []) + nets_of.get(b, [])))
        before = sum(net_len(t) for t in touched)
        pos[[a, b]] = pos[[b, a]]
        after = sum(net_len(t) for t in touched)
        delta = after - before
        if delta <= 0 or rng.random() < math.exp(-delta / max(temp, 1e-12)):
            current += delta
        else:
            pos[[a, b]] = pos[[b, a]]
        temp *= cooling
    return pos
