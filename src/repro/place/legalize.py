"""Row legalization (Tetris-style) for standard-cell placements.

Cells are snapped onto rows without overlap: processed in x order, each
cell is placed at the end of the row cursor that minimises its
displacement.  Raises :class:`PlacementError` when the die cannot hold
the cells at all (total width exceeding row capacity), which is the
placement-level "does not fit" failure the paper's area arguments are
about.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import PlacementError
from .floorplan import Floorplan

Point = Tuple[float, float]


def legalize_rows(positions: np.ndarray, widths: Sequence[float],
                  floorplan: Floorplan,
                  row_search: int = 6) -> np.ndarray:
    """Legalize (n, 2) positions into rows; returns new (n, 2) array.

    Each output position is the *center* of the placed cell;
    y coordinates are row centers.  ``row_search`` bounds how many rows
    above/below the target row are tried before widening the search.
    """
    n = positions.shape[0]
    widths = np.asarray(widths, dtype=float)
    if widths.shape[0] != n:
        raise PlacementError("widths length does not match positions")
    total_width = float(widths.sum())
    capacity = floorplan.width * floorplan.num_rows
    if total_width > capacity + 1e-6:
        raise PlacementError(
            f"cells ({total_width:.0f} µm) exceed row capacity "
            f"({capacity:.0f} µm): die too small")
    cursors = np.zeros(floorplan.num_rows)
    out = np.zeros_like(positions, dtype=float)
    order = np.argsort(positions[:, 0], kind="stable")
    for i in order:
        x, y = positions[i]
        width = widths[i]
        target = int(np.clip(y / floorplan.row_height, 0,
                             floorplan.num_rows - 1))
        best_row = -1
        best_cost = float("inf")
        radius = row_search
        while best_row < 0:
            lo = max(0, target - radius)
            hi = min(floorplan.num_rows - 1, target + radius)
            for row in range(lo, hi + 1):
                if cursors[row] + width > floorplan.width + 1e-9:
                    continue
                place_x = cursors[row]
                cost = (abs(place_x + width / 2.0 - x)
                        + abs(floorplan.row_y(row) - y))
                if cost < best_cost:
                    best_cost = cost
                    best_row = row
            if best_row < 0:
                if lo == 0 and hi == floorplan.num_rows - 1:
                    raise PlacementError(
                        "legalization failed: no row can accept cell "
                        f"{i} (width {width:.2f})")
                radius *= 2
        out[i, 0] = cursors[best_row] + width / 2.0
        out[i, 1] = floorplan.row_y(best_row)
        cursors[best_row] += width
    return out


def check_legal(positions: np.ndarray, widths: Sequence[float],
                floorplan: Floorplan, tolerance: float = 1e-6) -> None:
    """Raise :class:`PlacementError` on overlap or out-of-die cells."""
    n = positions.shape[0]
    widths = np.asarray(widths, dtype=float)
    by_row: Dict[int, List[Tuple[float, float]]] = {}
    for i in range(n):
        x, y = positions[i]
        row = int(round(y / floorplan.row_height - 0.5))
        if abs(floorplan.row_y(row) - y) > tolerance:
            raise PlacementError(f"cell {i} is not on a row (y={y})")
        left = x - widths[i] / 2.0
        right = x + widths[i] / 2.0
        if left < -tolerance or right > floorplan.width + tolerance:
            raise PlacementError(f"cell {i} extends outside the die")
        by_row.setdefault(row, []).append((left, right))
    for row, spans in by_row.items():
        spans.sort()
        for (l1, r1), (l2, r2) in zip(spans, spans[1:]):
            if r1 > l2 + tolerance:
                raise PlacementError(
                    f"overlap in row {row}: [{l1:.2f},{r1:.2f}] vs "
                    f"[{l2:.2f},{r2:.2f}]")
