"""Row legalization (Tetris-style) for standard-cell placements.

Cells are snapped onto rows without overlap: processed in x order, each
cell is placed at the end of the row cursor that minimises its
displacement.  Raises :class:`PlacementError` when the die cannot hold
the cells at all (total width exceeding row capacity), which is the
placement-level "does not fit" failure the paper's area arguments are
about.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import PlacementError
from .floorplan import Floorplan

Point = Tuple[float, float]

#: Legalization engines: vectorized row-window scoring vs the scalar
#: per-row scan.
VECTOR = "vector"
REFERENCE = "reference"


def legalize_rows(positions: np.ndarray, widths: Sequence[float],
                  floorplan: Floorplan,
                  row_search: int = 6, engine: str = VECTOR) -> np.ndarray:
    """Legalize (n, 2) positions into rows; returns new (n, 2) array.

    Each output position is the *center* of the placed cell;
    y coordinates are row centers.  ``row_search`` bounds how many rows
    above/below the target row are tried before widening the search.
    ``engine="vector"`` scores the whole candidate-row window with one
    array expression per cell; bit-identical to the reference scan
    (``np.argmin`` returns the first minimum, matching the strict-``<``
    update rule).
    """
    n = positions.shape[0]
    widths = np.asarray(widths, dtype=float)
    if widths.shape[0] != n:
        raise PlacementError("widths length does not match positions")
    total_width = float(widths.sum())
    capacity = floorplan.width * floorplan.num_rows
    if total_width > capacity + 1e-6:
        raise PlacementError(
            f"cells ({total_width:.0f} µm) exceed row capacity "
            f"({capacity:.0f} µm): die too small")
    cursors = np.zeros(floorplan.num_rows)
    out = np.zeros_like(positions, dtype=float)
    order = np.argsort(positions[:, 0], kind="stable")
    if engine == VECTOR:
        _legalize_vector(positions, widths, floorplan, row_search,
                         cursors, out, order)
    else:
        _legalize_reference(positions, widths, floorplan, row_search,
                            cursors, out, order)
    return out


def _legalize_vector(positions: np.ndarray, widths: np.ndarray,
                     floorplan: Floorplan, row_search: int,
                     cursors: np.ndarray, out: np.ndarray,
                     order: np.ndarray) -> None:
    """Fast legalizer: flat Python floats, hoisted row centers.

    The row windows are tiny (tens of entries), so the win here comes
    from stripping per-candidate numpy scalar overhead, not from array
    ops: coordinates, widths and cursors live in plain lists and the
    row centers are precomputed once.  IEEE double arithmetic is the
    same either way, so costs — and therefore every row choice — are
    bit-identical to the reference scan.
    """
    num_rows = floorplan.num_rows
    row_height = floorplan.row_height
    rows_y = [floorplan.row_y(r) for r in range(num_rows)]
    limit = floorplan.width + 1e-9
    last_row = num_rows - 1
    xs = positions[:, 0].tolist()
    ys = positions[:, 1].tolist()
    ws = widths.tolist()
    cur = cursors.tolist()
    inf = float("inf")
    for i in order.tolist():
        x = xs[i]
        y = ys[i]
        width = ws[i]
        target = int(min(max(y / row_height, 0), last_row))
        best_row = -1
        best_cost = inf
        radius = row_search
        while best_row < 0:
            lo = max(0, target - radius)
            hi = min(last_row, target + radius)
            for row in range(lo, hi + 1):
                place_x = cur[row]
                if place_x + width > limit:
                    continue
                cost = (abs(place_x + width / 2.0 - x)
                        + abs(rows_y[row] - y))
                if cost < best_cost:
                    best_cost = cost
                    best_row = row
            if best_row < 0:
                if lo == 0 and hi == last_row:
                    raise PlacementError(
                        "legalization failed: no row can accept cell "
                        f"{i} (width {width:.2f})")
                radius *= 2
        out[i, 0] = cur[best_row] + width / 2.0
        out[i, 1] = rows_y[best_row]
        cur[best_row] += width
    cursors[:] = cur


def _legalize_reference(positions: np.ndarray, widths: np.ndarray,
                        floorplan: Floorplan, row_search: int,
                        cursors: np.ndarray, out: np.ndarray,
                        order: np.ndarray) -> None:
    for i in order:
        x, y = positions[i]
        width = widths[i]
        target = int(np.clip(y / floorplan.row_height, 0,
                             floorplan.num_rows - 1))
        best_row = -1
        best_cost = float("inf")
        radius = row_search
        while best_row < 0:
            lo = max(0, target - radius)
            hi = min(floorplan.num_rows - 1, target + radius)
            for row in range(lo, hi + 1):
                if cursors[row] + width > floorplan.width + 1e-9:
                    continue
                place_x = cursors[row]
                cost = (abs(place_x + width / 2.0 - x)
                        + abs(floorplan.row_y(row) - y))
                if cost < best_cost:
                    best_cost = cost
                    best_row = row
            if best_row < 0:
                if lo == 0 and hi == floorplan.num_rows - 1:
                    raise PlacementError(
                        "legalization failed: no row can accept cell "
                        f"{i} (width {width:.2f})")
                radius *= 2
        out[i, 0] = cursors[best_row] + width / 2.0
        out[i, 1] = floorplan.row_y(best_row)
        cursors[best_row] += width


def check_legal(positions: np.ndarray, widths: Sequence[float],
                floorplan: Floorplan, tolerance: float = 1e-6) -> None:
    """Raise :class:`PlacementError` on overlap or out-of-die cells."""
    n = positions.shape[0]
    widths = np.asarray(widths, dtype=float)
    by_row: Dict[int, List[Tuple[float, float]]] = {}
    for i in range(n):
        x, y = positions[i]
        row = int(round(y / floorplan.row_height - 0.5))
        if abs(floorplan.row_y(row) - y) > tolerance:
            raise PlacementError(f"cell {i} is not on a row (y={y})")
        left = x - widths[i] / 2.0
        right = x + widths[i] / 2.0
        if left < -tolerance or right > floorplan.width + tolerance:
            raise PlacementError(f"cell {i} extends outside the die")
        by_row.setdefault(row, []).append((left, right))
    for row, spans in by_row.items():
        spans.sort()
        for (l1, r1), (l2, r2) in zip(spans, spans[1:]):
            if r1 > l2 + tolerance:
                raise PlacementError(
                    f"overlap in row {row}: [{l1:.2f},{r1:.2f}] vs "
                    f"[{l2:.2f},{r2:.2f}]")
