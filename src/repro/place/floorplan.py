"""Floorplans: die geometry, standard-cell rows and pad assignment.

The paper fixes a die size and row count per experiment (e.g. SPLA:
207062 µm², aspect ratio 1, 71 rows) and keeps three metal layers; this
module models exactly that: a rectangular core of equal-height rows
with I/O pads distributed around the perimeter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..errors import PlacementError

Point = Tuple[float, float]


@dataclass(frozen=True)
class Floorplan:
    """A rectangular standard-cell core."""

    width: float        # µm
    row_height: float   # µm
    num_rows: int

    def __post_init__(self) -> None:  # noqa: D105
        if self.width <= 0 or self.row_height <= 0 or self.num_rows <= 0:
            raise PlacementError("floorplan dimensions must be positive")

    @property
    def height(self) -> float:
        """Core height (µm)."""
        return self.row_height * self.num_rows

    @property
    def area(self) -> float:
        """Die area (µm²) — the figure the paper's tables report."""
        return self.width * self.height

    def row_y(self, row: int) -> float:
        """Center y of a row."""
        if not 0 <= row < self.num_rows:
            raise PlacementError(f"row {row} out of range")
        return (row + 0.5) * self.row_height

    def utilization(self, cell_area: float) -> float:
        """Area utilization in percent (the paper's column)."""
        return 100.0 * cell_area / self.area

    @classmethod
    def from_rows(cls, num_rows: int, row_height: float = 5.2,
                  aspect: float = 1.0) -> "Floorplan":
        """A core of ``num_rows`` rows with the given aspect (w/h)."""
        height = num_rows * row_height
        return cls(width=height * aspect, row_height=row_height,
                   num_rows=num_rows)

    @classmethod
    def for_area(cls, area: float, row_height: float = 5.2,
                 aspect: float = 1.0) -> "Floorplan":
        """The floorplan closest to ``area`` µm² at the given aspect."""
        height = math.sqrt(area / aspect)
        num_rows = max(1, round(height / row_height))
        actual_height = num_rows * row_height
        return cls(width=area / actual_height, row_height=row_height,
                   num_rows=num_rows)

    def with_rows(self, num_rows: int) -> "Floorplan":
        """Same width, different row count (the paper's die escalation)."""
        return Floorplan(width=self.width, row_height=self.row_height,
                         num_rows=num_rows)

    def contains(self, point: Point, margin: float = 1e-6) -> bool:
        """True when a point lies inside the core (with tolerance)."""
        x, y = point
        return (-margin <= x <= self.width + margin
                and -margin <= y <= self.height + margin)


def assign_pads(floorplan: Floorplan, inputs: Sequence[str],
                outputs: Sequence[str]) -> Dict[str, Point]:
    """Deterministic perimeter pad assignment.

    Pins are spaced evenly around the die boundary, inputs first
    (starting at the left edge, counter-clockwise), then outputs — the
    fixed terminals the quadratic placer anchors against, mirroring the
    paper's "floorplan constraints such as pin assignment".
    """
    names = list(inputs) + list(outputs)
    if not names:
        return {}
    w, h = floorplan.width, floorplan.height
    perimeter = 2.0 * (w + h)
    step = perimeter / len(names)
    pads: Dict[str, Point] = {}
    for i, name in enumerate(names):
        distance = (i + 0.5) * step
        pads[name] = _perimeter_point(distance, w, h)
    return pads


def _perimeter_point(distance: float, w: float, h: float) -> Point:
    """Walk ``distance`` counter-clockwise from the bottom-left corner."""
    distance %= 2.0 * (w + h)
    if distance < w:
        return (distance, 0.0)
    distance -= w
    if distance < h:
        return (w, distance)
    distance -= h
    if distance < w:
        return (w - distance, h)
    distance -= w
    return (0.0, h - distance)
