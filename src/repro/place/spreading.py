"""Cell spreading: recursive bisection of the analytical solution.

A raw quadratic solution collapses cells toward the die center.  This
pass recursively splits the cell population at the median and assigns
each half to the matching half of the region, preserving relative order
(hence locality) while distributing cells across the whole core — a
simplified whitespace-allocation step in the spirit of modern
analytical placers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .floorplan import Floorplan

#: Stop recursing below this population and scale cells into the region.
LEAF_POPULATION = 4

#: Spreading engines: level-batched sorting vs the recursive oracle.
VECTOR = "vector"
REFERENCE = "reference"


def spread(positions: np.ndarray, floorplan: Floorplan,
           weights: Optional[np.ndarray] = None,
           engine: str = VECTOR) -> np.ndarray:
    """Spread ``positions`` (n, 2) uniformly over the core.

    ``weights`` (cell areas) bias the split so each sub-region receives
    population proportional to its capacity; uniform when omitted.
    Returns a new (n, 2) array.  ``engine="vector"`` batches every
    region of a recursion level into one stable lexsort and scales all
    leaf regions together; results are bit-identical to the recursive
    reference.
    """
    n = positions.shape[0]
    if n == 0:
        return positions.copy()
    if weights is None:
        weights = np.ones(n)
    out = positions.astype(float).copy()
    if engine == VECTOR:
        _spread_vector(out, weights, floorplan)
        return out
    index = np.arange(n)
    _spread_region(out, index, weights,
                   0.0, 0.0, floorplan.width, floorplan.height, vertical=True)
    return out


def _spread_vector(out: np.ndarray, weights: np.ndarray,
                   floorplan: Floorplan) -> None:
    """Level-synchronous median bisection.

    Each level concatenates every active region's cells, sorts them all
    with ONE stable lexsort keyed (region, split coordinate) — which
    reproduces each region's own stable argsort, including the tie
    order inherited from the previous level — and then performs the
    cheap scalar split bookkeeping per region.  Leaf regions are
    collected and min-max scaled in one batch per population size.
    """
    n = out.shape[0]
    regions: List[Tuple[np.ndarray, float, float, float, float, bool]] = [
        (np.arange(n), 0.0, 0.0, floorplan.width, floorplan.height, True)]
    leaves: Dict[int, List[Tuple[np.ndarray, float, float, float, float]]] = {}
    while regions:
        live: List[Tuple[np.ndarray, float, float, float, float, bool]] = []
        for region in regions:
            index = region[0]
            if index.size == 0:
                continue
            if index.size <= LEAF_POPULATION:
                leaves.setdefault(index.size, []).append(region[:5])
            else:
                live.append(region)
        if not live:
            break
        # One stable sort for every region at this level.  The sort key
        # is (region ordinal, coordinate on that region's split axis);
        # stability makes ties fall back to the concatenation order,
        # i.e. each region's previous ordering — exactly what the
        # per-region stable argsort of the reference sees.
        axes: List[bool] = []
        for i, (index, x0, y0, x1, y1, vertical) in enumerate(live):
            if (x1 - x0) > 1.5 * (y1 - y0):
                vertical = True
            elif (y1 - y0) > 1.5 * (x1 - x0):
                vertical = False
            axes.append(vertical)
        cat = np.concatenate([r[0] for r in live])
        rid = np.repeat(np.arange(len(live)),
                        [r[0].size for r in live])
        axis_of = np.array([0 if v else 1 for v in axes])
        coord = out[cat, axis_of[rid]]
        order = np.lexsort((coord, rid))
        cat = cat[order]
        starts = np.concatenate(
            [[0], np.cumsum([r[0].size for r in live])])
        regions = []
        for i, (region, vertical) in enumerate(zip(live, axes)):
            _, x0, y0, x1, y1, _ = region
            ordered = cat[starts[i]:starts[i + 1]]
            w = weights[ordered]
            total = w.sum()
            half = np.searchsorted(np.cumsum(w), total / 2.0) + 1
            half = min(max(int(half), 1), ordered.size - 1)
            left, right = ordered[:half], ordered[half:]
            frac = weights[left].sum() / total if total > 0 else 0.5
            frac = min(max(frac, 0.05), 0.95)
            if vertical:
                xm = x0 + (x1 - x0) * frac
                regions.append((left, x0, y0, xm, y1, False))
                regions.append((right, xm, y0, x1, y1, False))
            else:
                ym = y0 + (y1 - y0) * frac
                regions.append((left, x0, y0, x1, ym, True))
                regions.append((right, x0, ym, x1, y1, True))
    for size, group in sorted(leaves.items()):
        _scale_leaves(out, group)


def _scale_leaves(out: np.ndarray,
                  group: List[Tuple[np.ndarray, float, float, float, float]]
                  ) -> None:
    """Batched min-max scaling of same-population leaf regions."""
    idx = np.stack([g[0] for g in group])                   # (g, s)
    bounds = np.array([g[1:] for g in group], dtype=float)  # (g, 4)
    for axis in (0, 1):
        lo = bounds[:, axis]
        hi = bounds[:, axis + 2]
        coords = out[idx, axis]                             # (g, s)
        cmin = coords.min(axis=1)
        span = coords.max(axis=1) - cmin
        pad = 0.25 * (hi - lo)
        degenerate = span < 1e-12
        safe_span = np.where(degenerate, 1.0, span)
        scaled = (lo + pad)[:, None] + (coords - cmin[:, None]) \
            / safe_span[:, None] * ((hi - pad) - (lo + pad))[:, None]
        centered = ((lo + hi) / 2.0)[:, None]
        out[idx, axis] = np.where(degenerate[:, None], centered, scaled)


def _spread_region(out: np.ndarray, index: np.ndarray, weights: np.ndarray,
                   x0: float, y0: float, x1: float, y1: float,
                   vertical: bool) -> None:
    """Recursively place the cells of ``index`` into [x0,x1]×[y0,y1]."""
    if index.size == 0:
        return
    if index.size <= LEAF_POPULATION:
        _scale_into(out, index, x0, y0, x1, y1)
        return
    # Split along the longer dimension for round regions; otherwise
    # alternate as requested.
    if (x1 - x0) > 1.5 * (y1 - y0):
        vertical = True
    elif (y1 - y0) > 1.5 * (x1 - x0):
        vertical = False
    axis = 0 if vertical else 1
    order = index[np.argsort(out[index, axis], kind="stable")]
    total = weights[order].sum()
    half = np.searchsorted(np.cumsum(weights[order]), total / 2.0) + 1
    half = min(max(int(half), 1), order.size - 1)
    left, right = order[:half], order[half:]
    frac = weights[left].sum() / total if total > 0 else 0.5
    frac = min(max(frac, 0.05), 0.95)
    if vertical:
        xm = x0 + (x1 - x0) * frac
        _spread_region(out, left, weights, x0, y0, xm, y1, not vertical)
        _spread_region(out, right, weights, xm, y0, x1, y1, not vertical)
    else:
        ym = y0 + (y1 - y0) * frac
        _spread_region(out, left, weights, x0, y0, x1, ym, not vertical)
        _spread_region(out, right, weights, x0, ym, x1, y1, not vertical)


def _scale_into(out: np.ndarray, index: np.ndarray,
                x0: float, y0: float, x1: float, y1: float) -> None:
    """Min-max scale the indexed points into the region interior."""
    for axis, (lo, hi) in enumerate(((x0, x1), (y0, y1))):
        coords = out[index, axis]
        span = coords.max() - coords.min()
        pad = 0.25 * (hi - lo)
        if span < 1e-12:
            out[index, axis] = (lo + hi) / 2.0
        else:
            out[index, axis] = (lo + pad) + (coords - coords.min()) / span \
                * ((hi - pad) - (lo + pad))
