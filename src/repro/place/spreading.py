"""Cell spreading: recursive bisection of the analytical solution.

A raw quadratic solution collapses cells toward the die center.  This
pass recursively splits the cell population at the median and assigns
each half to the matching half of the region, preserving relative order
(hence locality) while distributing cells across the whole core — a
simplified whitespace-allocation step in the spirit of modern
analytical placers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .floorplan import Floorplan

#: Stop recursing below this population and scale cells into the region.
LEAF_POPULATION = 4


def spread(positions: np.ndarray, floorplan: Floorplan,
           weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Spread ``positions`` (n, 2) uniformly over the core.

    ``weights`` (cell areas) bias the split so each sub-region receives
    population proportional to its capacity; uniform when omitted.
    Returns a new (n, 2) array.
    """
    n = positions.shape[0]
    if n == 0:
        return positions.copy()
    if weights is None:
        weights = np.ones(n)
    out = positions.astype(float).copy()
    index = np.arange(n)
    _spread_region(out, index, weights,
                   0.0, 0.0, floorplan.width, floorplan.height, vertical=True)
    return out


def _spread_region(out: np.ndarray, index: np.ndarray, weights: np.ndarray,
                   x0: float, y0: float, x1: float, y1: float,
                   vertical: bool) -> None:
    """Recursively place the cells of ``index`` into [x0,x1]×[y0,y1]."""
    if index.size == 0:
        return
    if index.size <= LEAF_POPULATION:
        _scale_into(out, index, x0, y0, x1, y1)
        return
    # Split along the longer dimension for round regions; otherwise
    # alternate as requested.
    if (x1 - x0) > 1.5 * (y1 - y0):
        vertical = True
    elif (y1 - y0) > 1.5 * (x1 - x0):
        vertical = False
    axis = 0 if vertical else 1
    order = index[np.argsort(out[index, axis], kind="stable")]
    total = weights[order].sum()
    half = np.searchsorted(np.cumsum(weights[order]), total / 2.0) + 1
    half = min(max(int(half), 1), order.size - 1)
    left, right = order[:half], order[half:]
    frac = weights[left].sum() / total if total > 0 else 0.5
    frac = min(max(frac, 0.05), 0.95)
    if vertical:
        xm = x0 + (x1 - x0) * frac
        _spread_region(out, left, weights, x0, y0, xm, y1, not vertical)
        _spread_region(out, right, weights, xm, y0, x1, y1, not vertical)
    else:
        ym = y0 + (y1 - y0) * frac
        _spread_region(out, left, weights, x0, y0, x1, ym, not vertical)
        _spread_region(out, right, weights, x0, ym, x1, y1, not vertical)


def _scale_into(out: np.ndarray, index: np.ndarray,
                x0: float, y0: float, x1: float, y1: float) -> None:
    """Min-max scale the indexed points into the region interior."""
    for axis, (lo, hi) in enumerate(((x0, x1), (y0, y1))):
        coords = out[index, axis]
        span = coords.max() - coords.min()
        pad = 0.25 * (hi - lo)
        if span < 1e-12:
            out[index, axis] = (lo + hi) / 2.0
        else:
            out[index, axis] = (lo + pad) + (coords - coords.min()) / span \
                * ((hi - pad) - (lo + pad))
