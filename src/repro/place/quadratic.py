"""Quadratic (analytical) global placement.

Minimises the squared-wirelength objective over movable nodes with
fixed pad terminals: for each coordinate the optimum solves a sparse
linear system ``L x = b`` where ``L`` is the connectivity Laplacian and
``b`` collects the pad anchors.  Nets are modeled as cliques (small
nets) or stars with an auxiliary movable node (large nets) — the
standard hybrid that keeps the system sparse on high-fanout PLA-style
netlists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla


Point = Tuple[float, float]

#: Nets with more pins than this use a star node instead of a clique.
CLIQUE_LIMIT = 6

#: Assembly engines: batched COO construction and the per-net oracle.
VECTOR = "vector"
REFERENCE = "reference"


@dataclass
class QpNet:
    """One net for the analytical solver.

    ``movables`` are indices of movable nodes; ``fixed`` are fixed
    terminal coordinates (pads, already-placed blocks).
    """

    movables: List[int]
    fixed: List[Point] = field(default_factory=list)

    def degree(self) -> int:
        """Total pin count."""
        return len(self.movables) + len(self.fixed)


def solve_quadratic(num_movable: int, nets: Sequence[QpNet],
                    default: Point = (0.0, 0.0),
                    engine: str = VECTOR) -> np.ndarray:
    """Solve the quadratic placement; returns an (n, 2) position array.

    Nodes not touched by any net stay at ``default``.  Raises
    :class:`PlacementError` when the system is singular (no fixed
    terminal anywhere in a connected component is tolerated by falling
    back to a tiny regularisation).  ``engine`` selects the batched
    Laplacian assembly (``"vector"``) or the per-net reference loop;
    both build bit-identical systems.
    """
    if num_movable == 0:
        return np.zeros((0, 2))
    if engine == VECTOR:
        diag, bx, by, lap = _assemble_vector(num_movable, nets)
    elif engine == REFERENCE:
        diag, bx, by, lap = _assemble_reference(num_movable, nets)
    else:
        from ..errors import PlacementError
        raise PlacementError(f"unknown quadratic engine {engine!r}")
    x = _solve(lap, bx)
    y = _solve(lap, by)
    out = np.column_stack([x[:num_movable], y[:num_movable]])
    untouched = diag[:num_movable] <= 2e-9
    out[untouched] = default
    return out


def _assemble_reference(num_movable: int, nets: Sequence[QpNet]):
    """Per-net list-building assembly (the bit-identity oracle)."""
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    diag = np.zeros(num_movable)
    bx = np.zeros(num_movable)
    by = np.zeros(num_movable)

    star_points: List[QpNet] = []
    num_star = 0
    for net in nets:
        if net.degree() < 2:
            continue
        if net.degree() <= CLIQUE_LIMIT:
            _add_clique(net, rows, cols, vals, diag, bx, by)
        else:
            star_points.append(net)
            num_star += 1

    n = num_movable + num_star
    if num_star:
        diag = np.concatenate([diag, np.zeros(num_star)])
        bx = np.concatenate([bx, np.zeros(num_star)])
        by = np.concatenate([by, np.zeros(num_star)])
        for i, net in enumerate(star_points):
            star = num_movable + i
            weight = 1.0  # per spoke
            for m in net.movables:
                _add_edge(m, star, weight, rows, cols, vals, diag)
            for (fx, fy) in net.fixed:
                diag[star] += weight
                bx[star] += weight * fx
                by[star] += weight * fy

    # Tiny regularisation keeps components without anchors solvable.
    diag = diag + 1e-9
    lap = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    lap = lap + sp.diags(diag)
    return diag, bx, by, lap


def _assemble_vector(num_movable: int, nets: Sequence[QpNet]):
    """Batched COO assembly, bit-identical to the reference loop.

    Floating-point accumulation into the diagonal / right-hand sides and
    duplicate summing in the COO→CSR conversion are order-sensitive, so
    the batched path emits entries in exactly the reference order:
    net-major, and within a clique pin-major ``(i, j>i)`` pairs followed
    by that pin's fixed anchors.  Nets are grouped by (movable count,
    fixed count); each group's per-net emission template is scattered to
    the nets' global offsets, which reproduces the order without a
    per-pin Python loop.
    """
    cliques: List[QpNet] = []
    stars: List[QpNet] = []
    for net in nets:
        deg = net.degree()
        if deg < 2:
            continue
        (cliques if deg <= CLIQUE_LIMIT else stars).append(net)

    num_star = len(stars)
    n = num_movable + num_star
    diag = np.zeros(n)
    bx = np.zeros(n)
    by = np.zeros(n)

    blocks = []
    if cliques:
        blocks.append(_emit_cliques(cliques, diag, bx, by))
    if stars:
        blocks.append(_emit_stars(stars, num_movable, diag, bx, by))
    if blocks:
        rows = np.concatenate([b[0] for b in blocks])
        cols = np.concatenate([b[1] for b in blocks])
        vals = np.concatenate([b[2] for b in blocks])
    else:
        rows = np.zeros(0, dtype=np.int64)
        cols = np.zeros(0, dtype=np.int64)
        vals = np.zeros(0)
    diag = diag + 1e-9
    lap = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    lap = lap + sp.diags(diag)
    return diag, bx, by, lap


def _group_by_shape(nets: Sequence[QpNet]):
    """Group net ordinals by (movable count, fixed count)."""
    groups: dict = {}
    for ordinal, net in enumerate(nets):
        key = (len(net.movables), len(net.fixed))
        groups.setdefault(key, []).append(ordinal)
    return groups


def _emit_cliques(cliques: Sequence[QpNet], diag: np.ndarray,
                  bx: np.ndarray, by: np.ndarray):
    """Emit clique COO entries and diag/rhs accumulations in order."""
    m_arr = np.array([len(net.movables) for net in cliques], dtype=np.int64)
    f_arr = np.array([len(net.fixed) for net in cliques], dtype=np.int64)
    ent_sizes = m_arr * (m_arr - 1)                 # 2 entries per pair
    dia_sizes = m_arr * (m_arr - 1) + m_arr * f_arr
    rhs_sizes = m_arr * f_arr
    ent_off = np.concatenate([[0], np.cumsum(ent_sizes)[:-1]])
    dia_off = np.concatenate([[0], np.cumsum(dia_sizes)[:-1]])
    rhs_off = np.concatenate([[0], np.cumsum(rhs_sizes)[:-1]])

    rows = np.empty(int(ent_sizes.sum()), dtype=np.int64)
    cols = np.empty(int(ent_sizes.sum()), dtype=np.int64)
    vals = np.empty(int(ent_sizes.sum()))
    dia_idx = np.empty(int(dia_sizes.sum()), dtype=np.int64)
    dia_val = np.empty(int(dia_sizes.sum()))
    rhs_idx = np.empty(int(rhs_sizes.sum()), dtype=np.int64)
    rhs_w = np.empty(int(rhs_sizes.sum()))
    rhs_fx = np.empty(int(rhs_sizes.sum()))
    rhs_fy = np.empty(int(rhs_sizes.sum()))

    for (m, f), ordinals in sorted(_group_by_shape(cliques).items()):
        ords = np.array(ordinals, dtype=np.int64)
        g = len(ordinals)
        weight = 2.0 / (m + f)
        M = np.array([cliques[o].movables for o in ordinals],
                     dtype=np.int64).reshape(g, m)
        ent_slots: List[int] = []        # movable slot per COO entry
        dia_slots: List[int] = []        # movable slot per diag add
        for i in range(m):
            for j in range(i + 1, m):
                ent_slots.extend((i, j))
                dia_slots.extend((i, j))
            dia_slots.extend([i] * f)
        if ent_slots:
            block_rows = M[:, ent_slots[0::2]]
            block_cols = M[:, ent_slots[1::2]]
            p = block_rows.shape[1]
            inter_rows = np.empty((g, 2 * p), dtype=np.int64)
            inter_cols = np.empty((g, 2 * p), dtype=np.int64)
            inter_rows[:, 0::2] = block_rows    # (i, j) entry
            inter_rows[:, 1::2] = block_cols    # (j, i) entry
            inter_cols[:, 0::2] = block_cols
            inter_cols[:, 1::2] = block_rows
            pos = ent_off[ords][:, None] + np.arange(2 * p)
            rows[pos] = inter_rows
            cols[pos] = inter_cols
            vals[pos] = -weight
        if dia_slots:
            pos = dia_off[ords][:, None] + np.arange(len(dia_slots))
            dia_idx[pos] = M[:, dia_slots]
            dia_val[pos] = weight
        if m and f:
            F = np.array([cliques[o].fixed for o in ordinals],
                         dtype=float).reshape(g, f, 2)
            pos = rhs_off[ords][:, None] + np.arange(m * f)
            rhs_idx[pos] = np.repeat(M, f, axis=1)
            rhs_fx[pos] = np.tile(F[:, :, 0], (1, m))
            rhs_fy[pos] = np.tile(F[:, :, 1], (1, m))
            rhs_w[pos] = weight

    np.add.at(diag, dia_idx, dia_val)
    np.add.at(bx, rhs_idx, rhs_w * rhs_fx)
    np.add.at(by, rhs_idx, rhs_w * rhs_fy)
    return rows, cols, vals


def _emit_stars(stars: Sequence[QpNet], num_movable: int, diag: np.ndarray,
                bx: np.ndarray, by: np.ndarray):
    """Emit star-net COO entries and accumulations in reference order."""
    m_arr = np.array([len(net.movables) for net in stars], dtype=np.int64)
    f_arr = np.array([len(net.fixed) for net in stars], dtype=np.int64)
    ent_sizes = 2 * m_arr
    dia_sizes = 2 * m_arr + f_arr
    rhs_sizes = f_arr
    ent_off = np.concatenate([[0], np.cumsum(ent_sizes)[:-1]])
    dia_off = np.concatenate([[0], np.cumsum(dia_sizes)[:-1]])
    rhs_off = np.concatenate([[0], np.cumsum(rhs_sizes)[:-1]])

    rows = np.empty(int(ent_sizes.sum()), dtype=np.int64)
    cols = np.empty(int(ent_sizes.sum()), dtype=np.int64)
    vals = np.full(int(ent_sizes.sum()), -1.0)
    dia_idx = np.empty(int(dia_sizes.sum()), dtype=np.int64)
    rhs_idx = np.empty(int(rhs_sizes.sum()), dtype=np.int64)
    rhs_fx = np.empty(int(rhs_sizes.sum()))
    rhs_fy = np.empty(int(rhs_sizes.sum()))

    for (m, f), ordinals in sorted(_group_by_shape(stars).items()):
        ords = np.array(ordinals, dtype=np.int64)
        g = len(ordinals)
        star_ids = num_movable + ords
        M = np.array([stars[o].movables for o in ordinals],
                     dtype=np.int64).reshape(g, m)
        if m:
            inter_rows = np.empty((g, 2 * m), dtype=np.int64)
            inter_cols = np.empty((g, 2 * m), dtype=np.int64)
            inter_rows[:, 0::2] = M
            inter_rows[:, 1::2] = star_ids[:, None]
            inter_cols[:, 0::2] = star_ids[:, None]
            inter_cols[:, 1::2] = M
            pos = ent_off[ords][:, None] + np.arange(2 * m)
            rows[pos] = inter_rows
            cols[pos] = inter_cols
            dpos = dia_off[ords][:, None] + np.arange(2 * m)
            dia_blk = np.empty((g, 2 * m), dtype=np.int64)
            dia_blk[:, 0::2] = M
            dia_blk[:, 1::2] = star_ids[:, None]
            dia_idx[dpos] = dia_blk
        if f:
            F = np.array([stars[o].fixed for o in ordinals],
                         dtype=float).reshape(g, f, 2)
            dpos = dia_off[ords][:, None] + 2 * m + np.arange(f)
            dia_idx[dpos] = star_ids[:, None]
            pos = rhs_off[ords][:, None] + np.arange(f)
            rhs_idx[pos] = star_ids[:, None]
            rhs_fx[pos] = F[:, :, 0]
            rhs_fy[pos] = F[:, :, 1]

    np.add.at(diag, dia_idx, 1.0)
    np.add.at(bx, rhs_idx, rhs_fx)
    np.add.at(by, rhs_idx, rhs_fy)
    return rows, cols, vals


def _add_clique(net: QpNet, rows: List[int], cols: List[int],
                vals: List[float], diag: np.ndarray,
                bx: np.ndarray, by: np.ndarray) -> None:
    degree = net.degree()
    weight = 2.0 / degree
    movs = net.movables
    for i in range(len(movs)):
        for j in range(i + 1, len(movs)):
            _add_edge(movs[i], movs[j], weight, rows, cols, vals, diag)
        for (fx, fy) in net.fixed:
            diag[movs[i]] += weight
            bx[movs[i]] += weight * fx
            by[movs[i]] += weight * fy


def _add_edge(i: int, j: int, weight: float, rows: List[int],
              cols: List[int], vals: List[float], diag: np.ndarray) -> None:
    rows.extend((i, j))
    cols.extend((j, i))
    vals.extend((-weight, -weight))
    if i < len(diag):
        diag[i] += weight
    if j < len(diag):
        diag[j] += weight


def _solve(lap: sp.csr_matrix, rhs: np.ndarray) -> np.ndarray:
    """Sparse SPD solve: direct for small systems, CG for large ones."""
    n = lap.shape[0]
    if n <= 4000:
        return spla.spsolve(lap.tocsc(), rhs)
    solution, info = spla.cg(lap, rhs, rtol=1e-7, maxiter=2000)
    if info != 0:
        solution = spla.spsolve(lap.tocsc(), rhs)
    return solution
