"""Quadratic (analytical) global placement.

Minimises the squared-wirelength objective over movable nodes with
fixed pad terminals: for each coordinate the optimum solves a sparse
linear system ``L x = b`` where ``L`` is the connectivity Laplacian and
``b`` collects the pad anchors.  Nets are modeled as cliques (small
nets) or stars with an auxiliary movable node (large nets) — the
standard hybrid that keeps the system sparse on high-fanout PLA-style
netlists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla


Point = Tuple[float, float]

#: Nets with more pins than this use a star node instead of a clique.
CLIQUE_LIMIT = 6


@dataclass
class QpNet:
    """One net for the analytical solver.

    ``movables`` are indices of movable nodes; ``fixed`` are fixed
    terminal coordinates (pads, already-placed blocks).
    """

    movables: List[int]
    fixed: List[Point] = field(default_factory=list)

    def degree(self) -> int:
        """Total pin count."""
        return len(self.movables) + len(self.fixed)


def solve_quadratic(num_movable: int, nets: Sequence[QpNet],
                    default: Point = (0.0, 0.0)) -> np.ndarray:
    """Solve the quadratic placement; returns an (n, 2) position array.

    Nodes not touched by any net stay at ``default``.  Raises
    :class:`PlacementError` when the system is singular (no fixed
    terminal anywhere in a connected component is tolerated by falling
    back to a tiny regularisation).
    """
    if num_movable == 0:
        return np.zeros((0, 2))
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    diag = np.zeros(num_movable)
    bx = np.zeros(num_movable)
    by = np.zeros(num_movable)

    star_points: List[QpNet] = []
    num_star = 0
    for net in nets:
        if net.degree() < 2:
            continue
        if net.degree() <= CLIQUE_LIMIT:
            _add_clique(net, rows, cols, vals, diag, bx, by)
        else:
            star_points.append(net)
            num_star += 1

    n = num_movable + num_star
    if num_star:
        diag = np.concatenate([diag, np.zeros(num_star)])
        bx = np.concatenate([bx, np.zeros(num_star)])
        by = np.concatenate([by, np.zeros(num_star)])
        for i, net in enumerate(star_points):
            star = num_movable + i
            weight = 1.0  # per spoke
            for m in net.movables:
                _add_edge(m, star, weight, rows, cols, vals, diag)
            for (fx, fy) in net.fixed:
                diag[star] += weight
                bx[star] += weight * fx
                by[star] += weight * fy

    # Tiny regularisation keeps components without anchors solvable.
    diag = diag + 1e-9
    lap = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    lap = lap + sp.diags(diag)
    x = _solve(lap, bx)
    y = _solve(lap, by)
    out = np.column_stack([x[:num_movable], y[:num_movable]])
    untouched = diag[:num_movable] <= 2e-9
    out[untouched] = default
    return out


def _add_clique(net: QpNet, rows: List[int], cols: List[int],
                vals: List[float], diag: np.ndarray,
                bx: np.ndarray, by: np.ndarray) -> None:
    degree = net.degree()
    weight = 2.0 / degree
    movs = net.movables
    for i in range(len(movs)):
        for j in range(i + 1, len(movs)):
            _add_edge(movs[i], movs[j], weight, rows, cols, vals, diag)
        for (fx, fy) in net.fixed:
            diag[movs[i]] += weight
            bx[movs[i]] += weight * fx
            by[movs[i]] += weight * fy


def _add_edge(i: int, j: int, weight: float, rows: List[int],
              cols: List[int], vals: List[float], diag: np.ndarray) -> None:
    rows.extend((i, j))
    cols.extend((j, i))
    vals.extend((-weight, -weight))
    if i < len(diag):
        diag[i] += weight
    if j < len(diag):
        diag[j] += weight


def _solve(lap: sp.csr_matrix, rhs: np.ndarray) -> np.ndarray:
    """Sparse SPD solve: direct for small systems, CG for large ones."""
    n = lap.shape[0]
    if n <= 4000:
        return spla.spsolve(lap.tocsc(), rhs)
    solution, info = spla.cg(lap, rhs, rtol=1e-7, maxiter=2000)
    if info != 0:
        solution = spla.spsolve(lap.tocsc(), rhs)
    return solution
