"""Placer facade: place base networks and mapped netlists.

Two entry points:

* :func:`place_base_network` — the *layout image* of Section 3: the
  technology-independent NAND2/INV network is placed once (quadratic
  solve + spreading; no legalization — the mapper only needs geometry)
  and drives partitioning and wire cost.
* :func:`place_netlist` — the physical-design placement of a mapped
  netlist (quadratic + spreading + row legalization), the input to
  global routing and STA.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..geometry import PositionMap
from ..errors import PlacementError
from ..library.cell import CellLibrary
from ..network.dag import BaseNetwork
from ..network.netlist import MappedNetlist
from .annealing import anneal
from .floorplan import Floorplan, Point, assign_pads
from .legalize import check_legal, legalize_rows
from .mincut import mincut_place
from .quadratic import QpNet, solve_quadratic
from .spreading import spread

#: Solve → spread → anchor rounds of the global placement loop.
GLOBAL_ITERATIONS = 3
#: Anchor-net weight schedule per iteration (pull toward spread slots).
ANCHOR_WEIGHTS = (0.12, 0.30, 0.60)

#: Placement engines (threaded through to every kernel).
VECTOR = "vector"
REFERENCE = "reference"

#: Per-phase timing accumulator: phase key -> seconds.
Timings = Dict[str, float]


def _tick(timings: Optional[Timings], key: str, t0: float) -> None:
    """Accumulate elapsed wall time since ``t0`` under ``key``."""
    if timings is not None:
        timings[key] = timings.get(key, 0.0) + (time.perf_counter() - t0)


def _global_place(num_movable: int, nets: List[QpNet], floorplan: Floorplan,
                  weights: Optional[np.ndarray] = None,
                  iterations: int = GLOBAL_ITERATIONS,
                  method: str = "mincut", seed: int = 0,
                  engine: str = VECTOR,
                  timings: Optional[Timings] = None) -> np.ndarray:
    """Global placement: min-cut bisection (default) or iterated quadratic.

    ``method="mincut"`` runs the FM recursive-bisection placer seeded by
    one quadratic solve — the quality workhorse.  ``method="quadratic"``
    runs the pure analytical loop (solve → spread → anchor), kept as a
    faster, lower-quality alternative and for cross-checking.
    """
    if method == "mincut":
        cell_widths = weights if weights is not None else np.ones(num_movable)
        return mincut_place(num_movable, nets, cell_widths, floorplan,
                            seed=seed, engine=engine, timings=timings)
    if method != "quadratic":
        raise PlacementError(f"unknown placement method {method!r}")
    center = (floorplan.width / 2.0, floorplan.height / 2.0)
    t0 = time.perf_counter()
    solved = solve_quadratic(num_movable, nets, default=center, engine=engine)
    _tick(timings, "t_quadratic", t0)
    t0 = time.perf_counter()
    spread_pos = spread(solved, floorplan, weights=weights, engine=engine)
    _tick(timings, "t_spread", t0)
    for round_ in range(1, iterations):
        weight = ANCHOR_WEIGHTS[min(round_ - 1, len(ANCHOR_WEIGHTS) - 1)]
        anchored = list(nets)
        for i in range(num_movable):
            anchor = QpNet(movables=[i],
                           fixed=[(float(spread_pos[i, 0]),
                                   float(spread_pos[i, 1]))])
            anchored.append(anchor)
        # Scale anchor influence by duplicating the weight through the
        # clique weight formula: a 2-pin net has weight 1, so emulate a
        # weaker pull by mixing previous and new solutions instead.
        t0 = time.perf_counter()
        solved_new = solve_quadratic(num_movable, anchored, default=center,
                                     engine=engine)
        _tick(timings, "t_quadratic", t0)
        solved = (1.0 - weight) * solved_new + weight * spread_pos
        t0 = time.perf_counter()
        spread_pos = spread(solved, floorplan, weights=weights, engine=engine)
        _tick(timings, "t_spread", t0)
    return spread_pos


@dataclass
class Placement:
    """A legalized standard-cell placement."""

    positions: Dict[str, Point]   # instance name -> cell center
    pads: Dict[str, Point]        # PI / PO name -> pad location
    floorplan: Floorplan

    def pin_point(self, name: str) -> Point:
        """Location of an instance or pad by name."""
        if name in self.positions:
            return self.positions[name]
        if name in self.pads:
            return self.pads[name]
        raise PlacementError(f"unknown placement object {name!r}")

    def net_points(self, netlist: MappedNetlist) -> Dict[str, List[Point]]:
        """All pin locations per net (driver, sinks, and I/O pads)."""
        points: Dict[str, List[Point]] = {}
        drivers = netlist.driver_map()
        sinks = netlist.sink_map()
        for net in netlist.nets():
            pts: List[Point] = []
            driver = drivers.get(net)
            if driver is not None:
                pts.append(self.positions[driver])
            elif net in self.pads:
                pts.append(self.pads[net])
            for inst, _pin in sinks.get(net, []):
                pts.append(self.positions[inst])
            points[net] = pts
        for po in netlist.outputs:
            if po in self.pads:
                points.setdefault(netlist.output_net[po], []).append(
                    self.pads[po])
        return points

    def hpwl(self, netlist: MappedNetlist) -> float:
        """Total half-perimeter wirelength (µm)."""
        total = 0.0
        for pts in self.net_points(netlist).values():
            if len(pts) >= 2:
                xs = [p[0] for p in pts]
                ys = [p[1] for p in pts]
                total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total


def place_base_network(network: BaseNetwork, floorplan: Floorplan,
                       seed: int = 0, method: str = "mincut",
                       engine: str = VECTOR,
                       timings: Optional[Timings] = None) -> PositionMap:
    """Place the technology-independent network on the layout image.

    Returns a :class:`PositionMap` over *all* vertices: primary inputs
    sit on their perimeter pads, gates at their spread locations.
    """
    num_vertices = network.num_vertices()
    gate_ids = [v for v in network.vertices() if not network.is_pi(v)]
    movable_index = {v: i for i, v in enumerate(gate_ids)}
    pads = assign_pads(floorplan, sorted(network.input_vertex),
                       sorted(network.outputs))

    nets: List[QpNet] = []
    fanout = network.fanout_map()
    for v in network.vertices():
        readers = fanout[v]
        drives_po = [po for po in network.outputs
                     if network.outputs[po] == v]
        movables: List[int] = []
        fixed: List[Point] = []
        if network.is_pi(v):
            fixed.append(pads[network.labels[v]])
        else:
            movables.append(movable_index[v])
        for r in readers:
            movables.append(movable_index[r])
        for po in drives_po:
            fixed.append(pads[po])
        if len(movables) + len(fixed) >= 2:
            nets.append(QpNet(movables=movables, fixed=fixed))

    spread_pos = _global_place(len(gate_ids), nets, floorplan,
                               method=method, seed=seed, engine=engine,
                               timings=timings)

    points: List[Point] = [(0.0, 0.0)] * num_vertices
    for name, v in network.input_vertex.items():
        points[v] = pads[name]
    for v, i in movable_index.items():
        points[v] = (float(spread_pos[i, 0]), float(spread_pos[i, 1]))
    return PositionMap(points)


def place_netlist(netlist: MappedNetlist, library: CellLibrary,
                  floorplan: Floorplan,
                  seed_positions: Optional[Dict[str, Point]] = None,
                  anneal_moves: int = 0, seed: int = 0,
                  method: str = "mincut", engine: str = VECTOR,
                  timings: Optional[Timings] = None) -> Placement:
    """Place a mapped netlist: quadratic + spreading + legalization.

    ``seed_positions`` (e.g. match centers of mass from the mapper) bias
    the analytical solve through weak anchor pseudo-nets.
    ``anneal_moves > 0`` runs an SA refinement before legalization
    (small blocks only).
    """
    inst_names = sorted(netlist.instances)
    index = {name: i for i, name in enumerate(inst_names)}
    widths = [library.cell_width(netlist.instances[n].cell_name)
              for n in inst_names]
    pads = assign_pads(floorplan, list(netlist.inputs),
                       list(netlist.outputs))

    drivers = netlist.driver_map()
    sinks = netlist.sink_map()
    nets: List[QpNet] = []
    po_nets: Dict[str, List[str]] = {}
    for po in netlist.outputs:
        po_nets.setdefault(netlist.output_net[po], []).append(po)
    for net in netlist.nets():
        movables: List[int] = []
        fixed: List[Point] = []
        driver = drivers.get(net)
        if driver is not None:
            movables.append(index[driver])
        elif net in pads:
            fixed.append(pads[net])
        for inst, _pin in sinks.get(net, []):
            movables.append(index[inst])
        for po in po_nets.get(net, []):
            fixed.append(pads[po])
        if len(movables) + len(fixed) >= 2:
            nets.append(QpNet(movables=movables, fixed=fixed))
    if seed_positions:
        for name, point in seed_positions.items():
            if name in index:
                nets.append(QpNet(movables=[index[name]], fixed=[point]))

    spread_pos = _global_place(len(inst_names), nets, floorplan,
                               weights=np.asarray(widths), method=method,
                               seed=seed, engine=engine, timings=timings)
    if anneal_moves > 0:
        net_movables = [n.movables for n in nets]
        net_fixed = [n.fixed for n in nets]
        t0 = time.perf_counter()
        spread_pos = anneal(spread_pos, net_movables, net_fixed, floorplan,
                            moves=anneal_moves, seed=seed, engine=engine)
        _tick(timings, "t_anneal", t0)
    t0 = time.perf_counter()
    legal = legalize_rows(spread_pos, widths, floorplan, engine=engine)
    _tick(timings, "t_legalize", t0)
    check_legal(legal, widths, floorplan)
    positions = {name: (float(legal[i, 0]), float(legal[i, 1]))
                 for name, i in index.items()}
    return Placement(positions=positions, pads=pads, floorplan=floorplan)
