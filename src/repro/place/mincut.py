"""Recursive min-cut bisection placement (Fiduccia–Mattheyses).

The workhorse global placer of this reproduction.  The die is split
recursively in half (alternating cut direction by region aspect); at
each split the cells of the region are bipartitioned to minimise the
number of cut nets with classic FM passes (incremental gain updates,
lazy-heap selection), with

* **terminal propagation** — pins outside the region (pads and cells
  already assigned elsewhere) bias the nets they touch toward the
  matching half, and
* width-balance constraints so each half fits its side's row capacity.

The initial split at every level is the median of a one-shot quadratic
solution, so FM starts from a wirelength-aware ordering rather than
noise.  Min-cut placement is the same family that drove the
timing-driven tools of the paper's era.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import PlacementError
from .floorplan import Floorplan
from .quadratic import QpNet, VECTOR, solve_quadratic

Point = Tuple[float, float]

#: Stop recursing below this many cells; arrange them locally.
LEAF_CELLS = 3
#: Maximum FM passes per bisection.
FM_PASSES = 2
#: Allowed imbalance: each side may exceed half the region width by this.
BALANCE_SLACK = 0.12


def mincut_place(num_cells: int, nets: Sequence[QpNet],
                 widths: Sequence[float], floorplan: Floorplan,
                 seed: int = 0, engine: str = VECTOR,
                 timings: Optional[Dict[str, float]] = None) -> np.ndarray:
    """Place ``num_cells`` cells; returns (n, 2) center positions.

    ``nets`` use the same structure as the quadratic solver (movable
    indices + fixed points), so the two global placers are
    interchangeable.  ``engine`` selects the assembly engine of the
    seeding quadratic solve; ``timings`` accumulates per-phase seconds
    (``t_quadratic`` for the seed solve, ``t_mincut`` for FM).
    """
    if num_cells == 0:
        return np.zeros((0, 2))
    widths_arr = np.asarray(widths, dtype=float)
    if widths_arr.shape[0] != num_cells:
        raise PlacementError("widths length does not match cell count")
    center = (floorplan.width / 2.0, floorplan.height / 2.0)
    t0 = time.perf_counter()
    guess = solve_quadratic(num_cells, nets, default=center, engine=engine)
    if timings is not None:
        timings["t_quadratic"] = timings.get("t_quadratic", 0.0) \
            + (time.perf_counter() - t0)
    t0 = time.perf_counter()
    if seed:
        # Seeded jitter diversifies FM tie-breaking so callers can take
        # the best of several placement attempts.
        rng = np.random.default_rng(seed)
        scale = 0.01 * (floorplan.width + floorplan.height)
        guess = guess + rng.normal(0.0, scale, size=guess.shape)

    net_cells: List[List[int]] = [list(dict.fromkeys(n.movables))
                                  for n in nets]
    net_fixed: List[List[Point]] = [list(n.fixed) for n in nets]
    nets_of: List[List[int]] = [[] for _ in range(num_cells)]
    for net_id, cells in enumerate(net_cells):
        for c in cells:
            nets_of[c].append(net_id)

    out = np.zeros((num_cells, 2))
    region_center: List[Point] = [center] * num_cells

    stack: List[Tuple[List[int], float, float, float, float]] = [
        (list(range(num_cells)), 0.0, 0.0,
         floorplan.width, floorplan.height)]
    while stack:
        cells, x0, y0, x1, y1 = stack.pop()
        if len(cells) <= LEAF_CELLS:
            _place_leaf(out, cells, guess, x0, y0, x1, y1)
            for c in cells:
                region_center[c] = (float(out[c, 0]), float(out[c, 1]))
            continue
        vertical = (x1 - x0) >= (y1 - y0)
        axis = 0 if vertical else 1
        mid = ((x0 + x1) / 2.0) if vertical else ((y0 + y1) / 2.0)
        left, right = _fm_bisect(cells, guess, widths_arr, nets_of,
                                 net_cells, net_fixed, region_center,
                                 axis, mid)
        if vertical:
            areas = ((x0, y0, mid, y1), (mid, y0, x1, y1))
        else:
            areas = ((x0, y0, x1, mid), (x0, mid, x1, y1))
        for group, (gx0, gy0, gx1, gy1) in zip((left, right), areas):
            if not group:
                continue
            cx, cy = (gx0 + gx1) / 2.0, (gy0 + gy1) / 2.0
            for c in group:
                region_center[c] = (cx, cy)
            stack.append((group, gx0, gy0, gx1, gy1))
    if timings is not None:
        timings["t_mincut"] = timings.get("t_mincut", 0.0) \
            + (time.perf_counter() - t0)
    return out


def _place_leaf(out: np.ndarray, cells: List[int], guess: np.ndarray,
                x0: float, y0: float, x1: float, y1: float) -> None:
    """Spread up to LEAF_CELLS cells across their final region."""
    order = sorted(cells, key=lambda c: (guess[c, 0], guess[c, 1]))
    n = len(order)
    for k, c in enumerate(order):
        out[c, 0] = x0 + (x1 - x0) * (k + 0.5) / n
        out[c, 1] = (y0 + y1) / 2.0


def _fm_bisect(cells: List[int], guess: np.ndarray, widths: np.ndarray,
               nets_of: List[List[int]], net_cells: List[List[int]],
               net_fixed: List[List[Point]], region_center: List[Point],
               axis: int, mid: float) -> Tuple[List[int], List[int]]:
    """Split ``cells`` into (left, right) minimising cut nets."""
    cell_list = sorted(cells, key=lambda c: (guess[c, axis], c))
    cell_set = set(cell_list)
    total_w = float(widths[cell_list].sum())
    max_side = total_w / 2.0 + BALANCE_SLACK * total_w

    side: Dict[int, int] = {}
    side_width = [0.0, 0.0]
    acc = 0.0
    for c in cell_list:
        s = 0 if acc < total_w / 2.0 else 1
        side[c] = s
        side_width[s] += widths[c]
        acc += widths[c]

    # Per-net state: internal members and side tallies (tallies include
    # external pulls from pads / already-assigned cells).
    members: Dict[int, List[int]] = {}
    tallies: Dict[int, List[int]] = {}
    for net_id in sorted({n for c in cell_list for n in nets_of[c]}):
        inside = [c for c in net_cells[net_id] if c in cell_set]
        if not inside:
            continue
        tally = [0, 0]
        for c in net_cells[net_id]:
            if c in cell_set:
                tally[side[c]] += 1
            else:
                point = region_center[c]
                tally[0 if point[axis] < mid else 1] += 1
        for point in net_fixed[net_id]:
            tally[0 if point[axis] < mid else 1] += 1
        members[net_id] = inside
        tallies[net_id] = tally

    def initial_gains() -> Dict[int, int]:
        gains: Dict[int, int] = {c: 0 for c in cell_list}
        for net_id, inside in members.items():
            tally = tallies[net_id]
            for c in inside:
                s = side[c]
                here = tally[s]
                there = tally[1 - s]
                if here == 1 and there > 0:
                    gains[c] += 1
                elif there == 0:
                    gains[c] -= 1
        return gains

    for _pass in range(FM_PASSES):
        gains = initial_gains()
        stamp: Dict[int, int] = {c: 0 for c in cell_list}
        heap: List[Tuple[int, int, int]] = []
        for c in cell_list:
            heapq.heappush(heap, (-gains[c], stamp[c], c))
        locked: Set[int] = set()
        moves: List[Tuple[int, int]] = []
        gain_total = 0
        best_gain = 0
        best_prefix = 0

        def bump(c: int, delta: int) -> None:
            if c in locked:
                return
            gains[c] += delta
            stamp[c] += 1
            heapq.heappush(heap, (-gains[c], stamp[c], c))

        while heap:
            neg_gain, st, c = heapq.heappop(heap)
            if c in locked or st != stamp[c]:
                continue
            s = side[c]
            if side_width[1 - s] + widths[c] > max_side:
                continue  # skipped; may retry later via stale entries
            # Apply the move with standard FM gain updates.
            locked.add(c)
            for net_id in nets_of[c]:
                tally = tallies.get(net_id)
                if tally is None:
                    continue
                inside = members[net_id]
                t = 1 - s
                if tally[t] == 0:
                    for other in inside:
                        bump(other, +1)
                elif tally[t] == 1:
                    for other in inside:
                        if other != c and side[other] == t:
                            bump(other, -1)
                tally[s] -= 1
                tally[t] += 1
                if tally[s] == 0:
                    for other in inside:
                        bump(other, -1)
                elif tally[s] == 1:
                    for other in inside:
                        if other != c and side[other] == s:
                            bump(other, +1)
            side_width[s] -= widths[c]
            side_width[1 - s] += widths[c]
            side[c] = 1 - s
            moves.append((c, s))
            gain_total += -neg_gain
            if gain_total > best_gain:
                best_gain = gain_total
                best_prefix = len(moves)
            if len(moves) - best_prefix > 50:
                break  # deep losing streak
        for c, original in reversed(moves[best_prefix:]):
            current = side[c]
            side_width[current] -= widths[c]
            side_width[original] += widths[c]
            side[c] = original
            for net_id in nets_of[c]:
                tally = tallies.get(net_id)
                if tally is not None:
                    tally[current] -= 1
                    tally[original] += 1
        if best_gain <= 0:
            break

    left = [c for c in cell_list if side[c] == 0]
    right = [c for c in cell_list if side[c] == 1]
    if not left or not right:
        half = len(cell_list) // 2
        left, right = cell_list[:half], cell_list[half:]
    return left, right
