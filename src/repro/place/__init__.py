"""Placement substrate: floorplans, quadratic placement, legalization."""

from .annealing import anneal, hpwl
from .floorplan import Floorplan, assign_pads
from .legalize import check_legal, legalize_rows
from .placer import Placement, place_base_network, place_netlist
from .quadratic import QpNet, solve_quadratic
from .spreading import spread

__all__ = [
    "Floorplan",
    "Placement",
    "QpNet",
    "anneal",
    "assign_pads",
    "check_legal",
    "hpwl",
    "legalize_rows",
    "place_base_network",
    "place_netlist",
    "solve_quadratic",
    "spread",
]
