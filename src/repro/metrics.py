"""Cross-cutting metrics helpers.

Small, dependency-light functions shared by flows, benches and tests:
wirelength measures, fanout statistics and structural summaries.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .network.boolnet import BooleanNetwork
from .network.dag import BaseNetwork
from .network.netlist import MappedNetlist

Point = Tuple[float, float]


def hpwl(points: Sequence[Point]) -> float:
    """Half-perimeter wirelength of one pin set."""
    if len(points) < 2:
        return 0.0
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def total_hpwl(net_points: Dict[str, Sequence[Point]]) -> float:
    """Sum of HPWL over all nets."""
    return sum(hpwl(p) for p in net_points.values())


def fanout_histogram(network: BaseNetwork) -> Dict[int, int]:
    """Histogram of gate fanout counts in a base network."""
    hist: Dict[int, int] = {}
    for v, count in enumerate(network.fanout_counts()):
        if network.is_pi(v):
            continue
        hist[count] = hist.get(count, 0) + 1
    return hist


def max_fanout(network: BaseNetwork) -> int:
    """Largest fanout of any signal (inputs included)."""
    counts = network.fanout_counts()
    return max(counts) if counts else 0


def mapped_pin_count(netlist: MappedNetlist) -> int:
    """Total pin count (inputs + outputs of all instances)."""
    return sum(len(inst.pins) + 1 for inst in netlist.instances.values())


def average_fanin(netlist: MappedNetlist) -> float:
    """Mean input-pin count per instance."""
    if not netlist.instances:
        return 0.0
    return sum(len(inst.pins) for inst in netlist.instances.values()) \
        / len(netlist.instances)


def literal_count(network: BooleanNetwork) -> int:
    """SOP literal count (alias of the network method, for symmetry)."""
    return network.num_literals()


def logic_depth(netlist: MappedNetlist) -> int:
    """Longest instance chain from any input to any output."""
    drivers = netlist.driver_map()
    depth: Dict[str, int] = {net: 0 for net in netlist.inputs}
    best = 0
    for inst_name in netlist.topological_instances():
        inst = netlist.instances[inst_name]
        level = 1 + max((depth.get(net, 0) for net in inst.input_nets()),
                        default=0)
        depth[inst.output] = level
        best = max(best, level)
    return best
