#!/usr/bin/env python
"""Post-mapping optimization: fanout buffering and gate sizing.

After congestion-aware mapping, two classic physical-synthesis passes
clean up timing:

1. **fanout buffering** splits the high-fanout shared nets (the very
   nets the paper's congestion story is about) with buffer trees, and
2. **gate sizing** upsizes drivers on the critical path — exactly the
   "cell sizing capability" Sylvester–Keutzer assume in the paper's
   Section 2.1, with its area cost reported.

Run:  python examples/postmap_optimization.py
"""

from repro.circuits import spla_like
from repro.core import FlowConfig, area_congestion, evaluate_netlist, map_network
from repro.library import CORELIB018
from repro.metrics import mapped_pin_count
from repro.network import check_base_vs_mapped, decompose
from repro.place import Floorplan, place_base_network
from repro.synth import optimize
from repro.timing import StaticTimingAnalyzer, buffer_fanout, size_gates


def main() -> None:
    network = spla_like(0.05)
    optimize(network, effort="rugged")
    base = decompose(network)
    floorplan = Floorplan.from_rows(18, aspect=1.0)
    positions = place_base_network(base, floorplan)
    mapping = map_network(base, CORELIB018, area_congestion(0.001),
                          partition_style="placement", positions=positions)
    netlist = mapping.netlist
    config = FlowConfig(library=CORELIB018)
    sta = StaticTimingAnalyzer(CORELIB018)

    def snapshot(label: str) -> None:
        point = evaluate_netlist(netlist, floorplan, config)
        lengths = {n: point.routing.net_wirelength(n)
                   for n in point.routing.routes}
        report = sta.analyze(netlist, lengths)
        print(f"{label:<22} cells={netlist.num_cells():4d} "
              f"area={netlist.total_area(CORELIB018):7.0f} um2  "
              f"pins={mapped_pin_count(netlist):5d}  "
              f"viol={point.violations:3d}  "
              f"critical={report.critical_arrival:6.3f} ns")

    snapshot("mapped")

    buffered = buffer_fanout(netlist, CORELIB018, max_fanout=8)
    check_base_vs_mapped(base, netlist, CORELIB018)
    print(f"  + buffering: {buffered.nets_buffered} nets split, "
          f"{buffered.buffers_added} buffers "
          f"(+{buffered.area_added:.1f} um2)")
    snapshot("buffered")

    sized = size_gates(netlist, CORELIB018)
    check_base_vs_mapped(base, netlist, CORELIB018)
    print(f"  + sizing: {sized.swaps} swaps "
          f"(+{100 * sized.area_penalty:.1f}% area)")
    snapshot("sized")


if __name__ == "__main__":
    main()
