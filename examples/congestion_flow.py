#!/usr/bin/env python
"""The paper's Figure 3 methodology on a congested PLA block.

Scenario: a control-logic PLA must fit a fixed die with three metal
layers.  Minimum-area mapping (K = 0) produces a structurally
unroutable netlist; the congestion-aware flow raises K until the
congestion map is acceptable, re-mapping (cheap) instead of
re-synthesizing (expensive).

Run:  python examples/congestion_flow.py
"""

from repro.circuits import spla_like
from repro.core import FlowConfig, congestion_aware_flow
from repro.library import CORELIB018
from repro.network import decompose
from repro.place import Floorplan, place_base_network
from repro.route import congestion_stats, render_congestion_map

#: The SPLA stand-in at 1/8 scale with its calibrated marginal die —
#: tight enough that minimum-area mapping does not route.
SCALE = 0.125
ROWS = 30


def main() -> None:
    network = spla_like(SCALE)
    base = decompose(network)
    floorplan = Floorplan.from_rows(ROWS, aspect=1.0)
    print(f"circuit   : {base}")
    print(f"fixed die : {floorplan.area:.0f} um2, {ROWS} rows, "
          f"3 metal layers")

    config = FlowConfig(library=CORELIB018)
    positions = place_base_network(base, floorplan)
    result = congestion_aware_flow(
        base, floorplan, config,
        k_schedule=[0.0, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05],
        positions=positions, tolerance=2)

    print("\nFigure-3 loop:")
    for point in result.history:
        verdict = "congestion OK" if point.violations <= 2 else "congested"
        print(f"  K={point.k:<7g} area={point.cell_area:7.0f} um2 "
              f"util={point.utilization:5.1f}%  "
              f"violations={point.violations:5d}  -> {verdict}")

    if not result.converged:
        print("\ndid not converge: relax the floorplan or resynthesize")
        return
    chosen = result.chosen
    print(f"\nconverged at K={chosen.k:g} "
          f"(area penalty "
          f"{100 * (chosen.cell_area / result.history[0].cell_area - 1):.1f}% "
          f"over minimum area)")
    stats = congestion_stats(chosen.routing)
    print(f"peak edge utilization {stats.peak_utilization:.2f}, "
          f"mean {stats.mean_utilization:.2f}")
    print()
    print(render_congestion_map(chosen.routing.grid))


if __name__ == "__main__":
    main()
