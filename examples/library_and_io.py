#!/usr/bin/env python
"""Library, formats and interoperability tour.

Shows the supporting substrates a downstream user touches directly:

* inspecting / serialising the cell library (mini-liberty),
* BLIF in, structural Verilog out,
* saving and re-loading a placement,
* drawing the congestion map.

Run:  python examples/library_and_io.py
"""

import io

from repro.circuits import mux_tree
from repro.core import FlowConfig, evaluate_netlist, map_network, min_area
from repro.io import (
    dump_blif,
    dump_placement,
    dump_verilog,
    parse_blif,
    parse_placement,
)
from repro.library import CORELIB018, dump_library, load_library
from repro.network import decompose
from repro.place import Floorplan
from repro.route import render_congestion_map


def main() -> None:
    # --- the cell library --------------------------------------------
    print(f"library {CORELIB018.name}: {len(CORELIB018)} cells, "
          f"row height {CORELIB018.row_height} um")
    for cell in CORELIB018.cells()[:5]:
        print(f"  {cell.name:10s} {cell.area:7.3f} um2  "
              f"f = {cell.function.to_string()}")
    liberty_text = dump_library(CORELIB018)
    reloaded = load_library(liberty_text)
    print(f"mini-liberty round trip: {len(reloaded)} cells, "
          f"{len(liberty_text.splitlines())} lines of text")

    # --- BLIF -> map -> Verilog --------------------------------------
    network = mux_tree(4)  # 16:1 mux
    blif_text = dump_blif(network)
    print(f"\nBLIF for {network.name}: {len(blif_text.splitlines())} lines")
    reparsed = parse_blif(blif_text)
    base = decompose(reparsed)
    mapping = map_network(base, CORELIB018, min_area())
    verilog_text = dump_verilog(mapping.netlist)
    print(f"mapped to {mapping.netlist.num_cells()} cells "
          f"({mapping.stats['cell_area']:.1f} um2); Verilog is "
          f"{len(verilog_text.splitlines())} lines")
    print("first instance line:",
          next(l.strip() for l in verilog_text.splitlines() if "(.Y(" in l))

    # --- placement round trip + congestion map ------------------------
    floorplan = Floorplan.for_area(mapping.stats["cell_area"] / 0.4,
                                   aspect=1.0)
    config = FlowConfig(library=CORELIB018)
    point = evaluate_netlist(mapping.netlist, floorplan, config)
    text = dump_placement(point.placement)
    restored = parse_placement(text)
    assert restored.positions == point.placement.positions
    print(f"\nplacement file: {len(text.splitlines())} lines "
          f"(round-trips losslessly)")
    print(f"routing: {point.violations} violations, "
          f"{point.routed_wirelength:.0f} um of wire")
    print(render_congestion_map(point.routing.grid))


if __name__ == "__main__":
    main()
