#!/usr/bin/env python
"""Timing-driven mapping of a datapath block (multiplier + comparator).

Demonstrates the secondary objectives of the mapper: the same base
network mapped for minimum area, minimum delay, and area+congestion,
then compared after place & route with the static timing analyzer —
including the paper's observation that congestion-aware mapping keeps
timing competitive because it reduces wire meandering.

Run:  python examples/datapath_timing.py
"""

from repro.circuits import array_multiplier, comparator
from repro.core import (
    FlowConfig,
    area_congestion,
    evaluate_netlist,
    map_network,
    min_area,
    min_delay,
    timing_of_point,
)
from repro.library import CORELIB018
from repro.metrics import logic_depth
from repro.network import BooleanNetwork, check_base_vs_mapped, decompose
from repro.place import Floorplan, place_base_network
from repro.synth import optimize


def build_datapath() -> BooleanNetwork:
    """A 5x5 multiplier whose product is compared against a constant bus.

    The two blocks are merged into one network: the multiplier feeds a
    10-bit comparator against primary inputs k0..k9.
    """
    mul = array_multiplier(5)
    net = BooleanNetwork("datapath")
    for name in mul.inputs:
        net.add_input(name)
    for k in range(10):
        net.add_input(f"k{k}")
    for name in mul.topological_order():
        net.add_node(name, mul.nodes[name].sop)
    cmp_block = comparator(10)
    from repro.network import Sop

    def rename(signal: str) -> str:
        if signal in cmp_block.inputs:
            # a* pins read the product bus, b* pins the constant bus.
            index = int(signal[1:])
            return f"m{index}" if signal.startswith("a") else f"k{index}"
        return f"c_{signal}"  # internal comparator node

    for name in cmp_block.topological_order():
        sop = cmp_block.nodes[name].sop
        net.add_node(rename(name), Sop.from_cubes(
            [[(rename(var), phase) for var, phase in cube]
             for cube in sop.cubes]))
    net.add_output("c_eq")
    net.add_output("c_gt")
    for k in range(10):
        net.add_output(f"m{k}")
    return net


def main() -> None:
    network = build_datapath()
    optimize(network, effort="fast")
    base = decompose(network)
    print(f"datapath: {base}")

    probe = map_network(base, CORELIB018, min_area())
    floorplan = Floorplan.for_area(probe.stats["cell_area"] / 0.40,
                                   aspect=1.0)
    positions = place_base_network(base, floorplan)
    config = FlowConfig(library=CORELIB018)

    objectives = [
        ("min-area", min_area(), "dagon"),
        ("min-delay", min_delay(), "placement"),
        ("area+K*wire", area_congestion(0.005), "placement"),
    ]
    print(f"{'objective':<12} {'cells':>6} {'area um2':>9} {'depth':>6} "
          f"{'viol':>5} {'wl um':>8} {'critical path':>28}")
    for label, objective, style in objectives:
        mapping = map_network(base, CORELIB018, objective,
                              partition_style=style, positions=positions)
        check_base_vs_mapped(base, mapping.netlist, CORELIB018)
        point = evaluate_netlist(mapping.netlist, floorplan, config)
        point.mapping = mapping
        timing = timing_of_point(point, config)
        print(f"{label:<12} {mapping.netlist.num_cells():>6} "
              f"{point.cell_area:>9.0f} "
              f"{logic_depth(mapping.netlist):>6} "
              f"{point.violations:>5} {point.routed_wirelength:>8.0f} "
              f"{timing.describe_critical():>28}")


if __name__ == "__main__":
    main()
