#!/usr/bin/env python
"""Quickstart: synthesize, map and evaluate a small circuit.

Walks the whole library surface in one sitting:

1. build a circuit (a ripple-carry adder),
2. optimize it (SIS-style technology-independent synthesis),
3. decompose to NAND2/INV base gates and place the layout image,
4. map it with the congestion-aware mapper at a couple of K values,
5. place, globally route and time each mapping.

Run:  python examples/quickstart.py
"""

from repro.circuits import ripple_carry_adder
from repro.core import (
    FlowConfig,
    area_congestion,
    evaluate_netlist,
    map_network,
    timing_of_point,
)
from repro.library import CORELIB018
from repro.network import check_base_vs_mapped, decompose
from repro.place import Floorplan, place_base_network
from repro.synth import optimize


def main() -> None:
    # 1. A 16-bit ripple-carry adder as a Boolean network.
    network = ripple_carry_adder(16)
    print(f"circuit : {network}")

    # 2. Technology-independent optimization (literal minimisation).
    report = optimize(network, effort="standard")
    print(f"synth   : {report.literals_before} -> {report.literals_after} "
          f"literals in {report.nodes_after} nodes")

    # 3. Decompose to base gates and place the layout image.
    base = decompose(network)
    print(f"decomp  : {base}")
    mapping_probe = map_network(base, CORELIB018)
    floorplan = Floorplan.for_area(
        mapping_probe.stats["cell_area"] / 0.45, aspect=1.0)
    positions = place_base_network(base, floorplan)
    print(f"die     : {floorplan.area:.0f} um2, {floorplan.num_rows} rows")

    # 4 + 5. Map at two K values and push each through place & route.
    config = FlowConfig(library=CORELIB018)
    for k in (0.0, 0.005):
        mapping = map_network(base, CORELIB018, area_congestion(k),
                              partition_style="placement",
                              positions=positions)
        check_base_vs_mapped(base, mapping.netlist, CORELIB018)
        point = evaluate_netlist(mapping.netlist, floorplan, config, k=k)
        point.mapping = mapping
        timing = timing_of_point(point, config)
        print(f"K={k:<6g}: {mapping.netlist.num_cells()} cells, "
              f"{point.cell_area:.0f} um2 "
              f"({point.utilization:.1f}% util), "
              f"{point.violations} violations, "
              f"wirelength {point.routed_wirelength:.0f} um, "
              f"critical path {timing.describe_critical()}")


if __name__ == "__main__":
    main()
